//! Constructors for common query-pattern shapes.
//!
//! All constructors return a [`Pattern`] (= [`LabeledGraph`]) with vertices numbered
//! in the documented order so that tests and figures can refer to pattern nodes
//! positionally (`v1` in the paper is vertex `0` here, and so on).

use crate::{Label, LabeledGraph, Pattern, VertexId};

/// A single vertex carrying `label`.
pub fn single_vertex(label: Label) -> Pattern {
    let mut p = LabeledGraph::new();
    p.add_vertex(label);
    p
}

/// A single edge `v0 — v1` with the given endpoint labels.
pub fn single_edge(a: Label, b: Label) -> Pattern {
    let mut p = LabeledGraph::new();
    let u = p.add_vertex(a);
    let v = p.add_vertex(b);
    p.add_edge(u, v).expect("edge");
    p
}

/// A simple path `v0 — v1 — … — v_{k-1}` with the given labels.
///
/// # Panics
/// Panics if `labels` is empty.
pub fn path(labels: &[Label]) -> Pattern {
    assert!(!labels.is_empty(), "path needs at least one vertex");
    let mut p = LabeledGraph::with_capacity(labels.len());
    let ids: Vec<VertexId> = labels.iter().map(|&l| p.add_vertex(l)).collect();
    for w in ids.windows(2) {
        p.add_edge(w[0], w[1]).expect("edge");
    }
    p
}

/// A cycle over the given labels (needs at least 3 vertices).
///
/// # Panics
/// Panics if fewer than three labels are supplied.
pub fn cycle(labels: &[Label]) -> Pattern {
    assert!(labels.len() >= 3, "cycle needs at least three vertices");
    let mut p = path(labels);
    p.add_edge(0, (labels.len() - 1) as VertexId).expect("closing edge");
    p
}

/// A triangle with the given labels (vertices 0, 1, 2).
pub fn triangle(a: Label, b: Label, c: Label) -> Pattern {
    cycle(&[a, b, c])
}

/// A star: vertex 0 is the centre with `center` label, vertices 1..=k are leaves.
pub fn star(center: Label, leaves: &[Label]) -> Pattern {
    let mut p = LabeledGraph::with_capacity(leaves.len() + 1);
    let c = p.add_vertex(center);
    for &l in leaves {
        let v = p.add_vertex(l);
        p.add_edge(c, v).expect("edge");
    }
    p
}

/// A complete graph (clique) over the given labels.
pub fn clique(labels: &[Label]) -> Pattern {
    let mut p = LabeledGraph::with_capacity(labels.len());
    let ids: Vec<VertexId> = labels.iter().map(|&l| p.add_vertex(l)).collect();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            p.add_edge(ids[i], ids[j]).expect("edge");
        }
    }
    p
}

/// A path of `k` vertices all carrying the same label.
pub fn uniform_path(k: usize, label: Label) -> Pattern {
    path(&vec![label; k])
}

/// A clique of `k` vertices all carrying the same label.
pub fn uniform_clique(k: usize, label: Label) -> Pattern {
    clique(&vec![label; k])
}

/// A star with `k` leaves where centre and leaves carry the given labels.
pub fn uniform_star(k: usize, center: Label, leaf: Label) -> Pattern {
    star(center, &vec![leaf; k])
}

/// Grow `pattern` by one edge between existing vertices `u` and `v`
/// (superpattern construction used by the anti-monotonicity experiments).
/// Returns `None` if the edge already exists or is a self loop.
pub fn extend_with_edge(pattern: &Pattern, u: VertexId, v: VertexId) -> Option<Pattern> {
    if u == v || pattern.has_edge(u, v) {
        return None;
    }
    let mut p = pattern.clone();
    p.add_edge(u, v).ok()?;
    Some(p)
}

/// Grow `pattern` by a new vertex labelled `label` attached to existing vertex `at`.
pub fn extend_with_vertex(pattern: &Pattern, at: VertexId, label: Label) -> Option<Pattern> {
    if (at as usize) >= pattern.num_vertices() {
        return None;
    }
    let mut p = pattern.clone();
    let nv = p.add_vertex(label);
    p.add_edge(at, nv).ok()?;
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let p = path(&[Label(0), Label(1), Label(2)]);
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.num_edges(), 2);
        assert!(p.has_edge(0, 1));
        assert!(p.has_edge(1, 2));
        assert!(!p.has_edge(0, 2));
    }

    #[test]
    fn cycle_and_triangle() {
        let c = cycle(&[Label(0); 4]);
        assert_eq!(c.num_edges(), 4);
        let t = triangle(Label(0), Label(0), Label(0));
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.degree(0), 2);
    }

    #[test]
    fn star_shape() {
        let s = uniform_star(4, Label(9), Label(1));
        assert_eq!(s.num_vertices(), 5);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.label(0), Label(9));
        for v in 1..5 {
            assert_eq!(s.degree(v), 1);
            assert_eq!(s.label(v), Label(1));
        }
    }

    #[test]
    fn clique_shape() {
        let k4 = uniform_clique(4, Label(0));
        assert_eq!(k4.num_edges(), 6);
        assert_eq!(k4.max_degree(), 3);
    }

    #[test]
    fn single_shapes() {
        assert_eq!(single_vertex(Label(3)).num_vertices(), 1);
        let e = single_edge(Label(1), Label(2));
        assert_eq!(e.num_edges(), 1);
        assert_eq!(e.label(1), Label(2));
    }

    #[test]
    fn extension_helpers() {
        let p = path(&[Label(0), Label(0), Label(0)]);
        let closed = extend_with_edge(&p, 0, 2).unwrap();
        assert_eq!(closed.num_edges(), 3);
        assert!(extend_with_edge(&p, 0, 1).is_none()); // already exists
        assert!(extend_with_edge(&p, 1, 1).is_none()); // self loop
        let grown = extend_with_vertex(&p, 2, Label(7)).unwrap();
        assert_eq!(grown.num_vertices(), 4);
        assert_eq!(grown.label(3), Label(7));
        assert!(extend_with_vertex(&p, 99, Label(7)).is_none());
    }

    #[test]
    #[should_panic]
    fn empty_path_panics() {
        let _ = path(&[]);
    }

    #[test]
    #[should_panic]
    fn short_cycle_panics() {
        let _ = cycle(&[Label(0), Label(0)]);
    }
}
