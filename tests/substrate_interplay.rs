//! Integration tests that cut across the substrate crates: the hypergraph solvers,
//! the LP solver and the occurrence machinery must agree with each other on derived
//! quantities (weak/strong duality, reduction soundness, dual-hypergraph semantics).

use ffsm::core::occurrences::OccurrenceSet;
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{generators, patterns, Label};
use ffsm::hypergraph::independent_set::{exact_max_independent_set, SimpleGraph};
use ffsm::hypergraph::matching::exact_independent_edge_set;
use ffsm::hypergraph::vertex_cover::{exact_vertex_cover, is_vertex_cover};
use ffsm::hypergraph::{Hypergraph, SearchBudget};
use ffsm::lp::{covering_lp, packing_lp};
use proptest::prelude::*;

/// Build the occurrence hypergraph of a sampled pattern in a random graph.
fn random_occurrence_hypergraph(seed: u64, pattern_edges: usize) -> Option<Hypergraph> {
    let graph = generators::gnm_random(40, 90, 2, seed);
    let (pattern, _) = generators::sample_pattern(&graph, pattern_edges, seed ^ 0xc0ffee)?;
    let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::with_limit(2_000));
    if occ.num_occurrences() == 0 {
        return None;
    }
    Some(occ.occurrence_hypergraph())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn weak_and_lp_duality_sandwich(seed in 0u64..5_000, pattern_edges in 1usize..3) {
        let Some(h) = random_occurrence_hypergraph(seed, pattern_edges) else { return Ok(()); };
        prop_assume!(h.num_edges() <= 300);
        let budget = SearchBudget::default();
        let matching = exact_independent_edge_set(&h, budget);
        let cover = exact_vertex_cover(&h, budget);
        prop_assume!(matching.optimal && cover.optimal);
        let sets: Vec<Vec<usize>> = h.edges().map(|(_, e)| e.to_vec()).collect();
        let lp_cover = covering_lp(h.num_vertices(), &sets).solve().unwrap().objective;
        let lp_pack = packing_lp(sets.len(), &sets, h.num_vertices()).solve().unwrap().objective;
        // integral packing <= fractional packing = fractional covering <= integral cover
        prop_assert!((lp_cover - lp_pack).abs() < 1e-5);
        prop_assert!(matching.value as f64 <= lp_pack + 1e-6);
        prop_assert!(lp_cover <= cover.value as f64 + 1e-6);
        // and the k-uniform bound: cover <= k * matching
        if let Some(k) = h.uniform_rank() {
            prop_assert!(cover.value <= k * matching.value.max(1));
        }
    }

    #[test]
    fn minimal_edge_reduction_preserves_cover_size(seed in 0u64..5_000) {
        let Some(h) = random_occurrence_hypergraph(seed, 2) else { return Ok(()); };
        prop_assume!(h.num_edges() <= 200);
        let reduced = h.restrict_to_edges(&h.minimal_edge_indices());
        let budget = SearchBudget::default();
        let full = exact_vertex_cover(&h, budget);
        let red = exact_vertex_cover(&reduced, budget);
        prop_assume!(full.optimal && red.optimal);
        prop_assert_eq!(full.value, red.value);
        // A cover of the reduced hypergraph covers the full one too.
        prop_assert!(is_vertex_cover(&h, &red.witness));
    }

    #[test]
    fn dual_hypergraph_mis_equals_matching(seed in 0u64..5_000) {
        // A maximum independent edge set of H is a maximum independent vertex set of
        // the overlap graph derived from H (the computational content of Theorem 4.1).
        let Some(h) = random_occurrence_hypergraph(seed, 2) else { return Ok(()); };
        prop_assume!(h.num_edges() <= 120);
        let budget = SearchBudget::default();
        let matching = exact_independent_edge_set(&h, budget);
        let overlap = SimpleGraph::from_adjacency(h.overlap_adjacency());
        let mis = exact_max_independent_set(&overlap, budget);
        prop_assume!(matching.optimal && mis.optimal);
        prop_assert_eq!(matching.value, mis.value);
    }
}

#[test]
fn dual_hypergraph_of_figure8_matches_paper_description() {
    // Figure 8: each dual-hypergraph edge corresponds to a data vertex and contains
    // the two instances meeting at that vertex; the dual is 2-uniform (a 4-cycle).
    let example = ffsm::graph::figures::figure8();
    let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
    let h = occ.instance_hypergraph();
    let dual = h.dual();
    assert_eq!(dual.num_vertices(), 4); // one per instance
    assert_eq!(dual.num_edges(), 4); // one per data vertex
    assert_eq!(dual.uniform_rank(), Some(2));
}

#[test]
fn occurrence_hypergraph_uniformity_matches_pattern_size() {
    // Section 4.4: occurrence hypergraphs are k-uniform with k = |V_P|.
    for (pattern, edges) in [
        (patterns::single_edge(Label(0), Label(1)), 2usize),
        (patterns::uniform_path(3, Label(0)), 3),
        (patterns::uniform_clique(3, Label(0)), 3),
    ] {
        let graph = generators::gnm_random(40, 120, 2, 3);
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::with_limit(10_000));
        if occ.num_occurrences() == 0 {
            continue;
        }
        assert_eq!(occ.occurrence_hypergraph().uniform_rank(), Some(edges));
    }
}

#[test]
fn greedy_matching_cover_certifies_k_approximation() {
    // The greedy matching cover is simultaneously (i) a vertex cover and (ii) the
    // union of a maximal matching, so |cover| <= k·|matching| <= k·MVC.
    let example = ffsm::graph::figures::figure6();
    let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
    let h = occ.occurrence_hypergraph();
    let cover = ffsm::hypergraph::vertex_cover::greedy_matching_cover(&h);
    assert!(is_vertex_cover(&h, &cover));
    let exact = exact_vertex_cover(&h, SearchBudget::default());
    let k = h.uniform_rank().unwrap();
    assert!(cover.len() <= k * exact.value);
}
