//! [`CandidateSpace`] — per-pattern-vertex candidate sets, pruned before search.
//!
//! The builder runs two phases against a [`GraphIndex`]:
//!
//! 1. **Initial filtering**: the candidates of pattern vertex `u` are the data
//!    vertices with `u`'s label, degree ≥ `deg(u)` (via the index's degree buckets)
//!    and a neighbour-label fingerprint that covers `u`'s.
//! 2. **Neighbourhood-consistency refinement** (CFL-style, AC-3 flavoured): a
//!    candidate `v ∈ C(u)` survives only if, for *every* pattern neighbour `u'` of
//!    `u`, some data neighbour of `v` is in `C(u')`.  Deletions propagate until a
//!    fixpoint is reached.
//!
//! Both phases only ever delete vertices that cannot participate in any embedding
//! (for the non-induced semantics; the induced semantics matches a subset of those
//! embeddings, so the space is sound for both).  The search then enumerates inside
//! this space instead of the whole graph.
//!
//! Candidate lists are kept **sorted ascending by vertex id** — the determinism
//! contract of the enumerator (and its parallel root partition) is anchored here.

use crate::index::GraphIndex;
use ffsm_graph::{LabeledGraph, Pattern, VertexId};

/// Dense bitset over data-graph vertices: O(1) membership for the refinement loop
/// and the search's pivot-adjacency filter.
#[derive(Debug, Clone)]
struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    fn with_len(n: usize) -> Self {
        Bitset { words: vec![0u64; n.div_ceil(64)] }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }
}

/// The pruned candidate sets of one pattern against one indexed data graph.
#[derive(Debug, Clone)]
pub struct CandidateSpace {
    /// Per pattern vertex: surviving candidates, ascending by data vertex id.
    candidates: Vec<Vec<VertexId>>,
    /// Per pattern vertex: membership bitset over data vertices (mirrors
    /// `candidates`).
    member: Vec<Bitset>,
    /// Per pattern vertex: candidate count after phase 1, before refinement.
    initial_sizes: Vec<usize>,
    /// Number of refinement sweeps until the fixpoint (≥ 1; the last sweep deletes
    /// nothing).
    refinement_rounds: usize,
}

impl CandidateSpace {
    /// Build and refine the candidate space of `pattern` in `graph` using `index`
    /// (which must have been built from the same `graph`).
    pub fn build(pattern: &Pattern, graph: &LabeledGraph, index: &GraphIndex) -> Self {
        let n = pattern.num_vertices();
        let mut candidates: Vec<Vec<VertexId>> = Vec::with_capacity(n);
        let mut member: Vec<Bitset> = Vec::with_capacity(n);
        let mut initial_sizes = Vec::with_capacity(n);
        for u in pattern.vertices() {
            let need = GraphIndex::neighbor_fingerprint(pattern, u);
            let mut set: Vec<VertexId> = index
                .vertices_with_min_degree(pattern.label(u), pattern.degree(u))
                .iter()
                .copied()
                .filter(|&v| need & !index.fingerprint(v) == 0)
                .collect();
            set.sort_unstable();
            let mut bits = Bitset::with_len(graph.num_vertices());
            for &v in &set {
                bits.set(v as usize);
            }
            initial_sizes.push(set.len());
            candidates.push(set);
            member.push(bits);
        }

        // Refinement to fixpoint.  Deletions take effect immediately (the bitsets
        // are updated in place), so later checks in the same sweep see them and the
        // fixpoint is reached in fewer sweeps; the fixpoint itself is unique
        // regardless of sweep order, so this does not affect the result.
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let mut changed = false;
            for u in 0..n {
                let pattern_neighbors = pattern.neighbors(u as VertexId);
                if pattern_neighbors.is_empty() {
                    continue;
                }
                let mut removed: Vec<VertexId> = Vec::new();
                candidates[u].retain(|&v| {
                    let supported = pattern_neighbors.iter().all(|&u_prime| {
                        graph.neighbors(v).iter().any(|&w| member[u_prime as usize].get(w as usize))
                    });
                    if !supported {
                        removed.push(v);
                    }
                    supported
                });
                if !removed.is_empty() {
                    changed = true;
                    for v in removed {
                        member[u].clear(v as usize);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        CandidateSpace { candidates, member, initial_sizes, refinement_rounds: rounds }
    }

    /// Number of pattern vertices.
    pub fn num_pattern_vertices(&self) -> usize {
        self.candidates.len()
    }

    /// The surviving candidates of pattern vertex `u`, ascending by data vertex id.
    pub fn candidates(&self, u: VertexId) -> &[VertexId] {
        &self.candidates[u as usize]
    }

    /// `true` if data vertex `v` is a surviving candidate of pattern vertex `u`.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.member[u as usize].get(v as usize)
    }

    /// Candidate count per pattern vertex after refinement.
    pub fn sizes(&self) -> Vec<usize> {
        self.candidates.iter().map(Vec::len).collect()
    }

    /// Candidate count per pattern vertex after the initial label / degree /
    /// fingerprint filter, before refinement.
    pub fn initial_sizes(&self) -> &[usize] {
        &self.initial_sizes
    }

    /// Total surviving candidates across all pattern vertices.
    pub fn total_size(&self) -> usize {
        self.candidates.iter().map(Vec::len).sum()
    }

    /// `true` if some pattern vertex has no candidate left — no embedding exists.
    pub fn has_empty_set(&self) -> bool {
        self.candidates.iter().any(Vec::is_empty)
    }

    /// Number of refinement sweeps run to reach the fixpoint.
    pub fn refinement_rounds(&self) -> usize {
        self.refinement_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::{patterns, Label};

    #[test]
    fn bitset_set_clear_get() {
        let mut b = Bitset::with_len(130);
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(129);
        b.set(64);
        assert!(b.get(0) && b.get(64) && b.get(129));
        b.clear(64);
        assert!(!b.get(64) && b.get(129));
    }

    #[test]
    fn initial_filter_uses_label_degree_and_fingerprint() {
        // Data: A-B edge, an isolated A, and an A whose only neighbour is another A.
        let g = LabeledGraph::from_edges(&[0, 1, 0, 0, 0], &[(0, 1), (3, 4)]);
        let p = patterns::single_edge(Label(0), Label(1));
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        // Pattern vertex 0 (label A, needs a B neighbour): only data vertex 0.
        // Vertex 2 fails the degree filter, 3 and 4 fail the fingerprint.
        assert_eq!(cs.candidates(0), &[0]);
        assert_eq!(cs.candidates(1), &[1]);
        assert!(cs.contains(0, 0) && !cs.contains(0, 3));
    }

    #[test]
    fn refinement_peels_decoy_chains() {
        // Pattern: path A-B-C.  Data: a real A-B-C chain plus a decoy A-B pair whose
        // B has a *second* A neighbour instead of a C — the decoy B passes the
        // fingerprint filter only if labels collide, but its C-side support is
        // missing, so refinement must delete it and then the decoy A's.
        let g = LabeledGraph::from_edges(
            &[0, 1, 2, 0, 1, 0], // real: 0-1-2; decoy: 3-4, 5-4
            &[(0, 1), (1, 2), (3, 4), (5, 4)],
        );
        let p = patterns::path(&[Label(0), Label(1), Label(2)]);
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        assert_eq!(cs.candidates(0), &[0]);
        assert_eq!(cs.candidates(1), &[1]);
        assert_eq!(cs.candidates(2), &[2]);
        // The decoy B was present before refinement (it has label B and degree 2 but
        // the wrong neighbour labels are only visible through the fingerprint, which
        // distinguishes A from C here — so it is already gone after phase 1).
        assert!(!cs.contains(1, 4));
        assert!(cs.refinement_rounds() >= 1);
    }

    #[test]
    fn refinement_reaches_fixpoint_on_longer_chains() {
        // Pattern: path A-B-A-B (4 vertices).  Data: an A-B-A-B path (real) plus an
        // A-B tail (decoy) — every decoy vertex passes label/degree/fingerprint
        // filters but the chain is too short, so refinement peels it end-first over
        // multiple sweeps.
        let g = LabeledGraph::from_edges(
            &[0, 1, 0, 1, 0, 1], // real path 0-1-2-3, decoy path 4-5
            &[(0, 1), (1, 2), (2, 3), (4, 5)],
        );
        let p = patterns::path(&[Label(0), Label(1), Label(0), Label(1)]);
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        // The decoy tail cannot host the 4-path in either direction.
        assert!(!cs.candidates(0).contains(&4));
        assert!(!cs.candidates(3).contains(&5));
        assert!(!cs.has_empty_set());
        // The inner pattern vertices need degree ≥ 2, which only the real mid-path
        // vertices have.
        assert_eq!(cs.candidates(1), &[1]);
        assert_eq!(cs.candidates(2), &[2]);
    }

    #[test]
    fn empty_set_detected_when_label_missing() {
        let g = LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let p = patterns::single_edge(Label(0), Label(7));
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        assert!(cs.has_empty_set());
        assert_eq!(cs.total_size(), 0, "refinement empties the supported side too");
    }

    #[test]
    fn sizes_report_both_phases() {
        let g = LabeledGraph::from_edges(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]);
        let p = patterns::single_edge(Label(0), Label(1));
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        assert_eq!(cs.initial_sizes(), &[1, 3]);
        assert_eq!(cs.sizes(), vec![1, 3]);
        assert_eq!(cs.total_size(), 4);
        assert_eq!(cs.num_pattern_vertices(), 2);
    }
}
