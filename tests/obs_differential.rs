//! Differential harness for the observability layer, alongside
//! `overlap_differential.rs` / `match_differential.rs` / `dynamic_differential.rs`:
//!
//! * **metrics-on == metrics-off, bit for bit** — enabling fine-grained phase
//!   timing ([`MiningSession::metrics`]) changes *what is recorded*, never
//!   *what is mined*: across all four paper measures (MNI / MI / MVC / MIS)
//!   and all three enumerator backends, the timed run reproduces the untimed
//!   run's patterns (canonical codes, support bits, occurrence counts), final
//!   threshold, completion, evaluation counts — and the always-on counter
//!   block itself;
//! * **`patterns_emitted` is the stream** — the counter equals the number of
//!   `Pattern` events a streaming consumer sees, in both threshold and top-k
//!   modes, under every backend (proptest);
//! * **counters are thread-count invariant** — per-worker tallies merged from
//!   a parallel run equal the single-threaded totals, with `arena_peak_bytes`
//!   as the one documented exception (a single arena serving every candidate
//!   grows larger than each of several), under every backend and measure
//!   (proptest).
//!
//! The proptest shim seeds each generator deterministically from the test
//! name, so every run replays the same fixed case sequence.

use ffsm::core::{EnumeratorBackend, MeasureKind};
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::generators;
use ffsm::miner::{MiningEvent, MiningResult, MiningSession, PreparedGraph, SessionCounters};
use proptest::prelude::*;

const MEASURES: [MeasureKind; 4] =
    [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc, MeasureKind::Mis];
const BACKENDS: [EnumeratorBackend; 3] =
    [EnumeratorBackend::CandidateSpace, EnumeratorBackend::Naive, EnumeratorBackend::Auto];

/// Everything observable about a mined pattern, with supports compared by bit
/// pattern (not epsilon) — the contract is identity, not closeness.
type PatternFingerprint = (Vec<u64>, u64, usize);

fn fingerprints(result: &MiningResult) -> Vec<PatternFingerprint> {
    result
        .patterns
        .iter()
        .map(|p| {
            (canonical_code(&p.pattern).as_slice().to_vec(), p.support.to_bits(), p.num_occurrences)
        })
        .collect()
}

/// `SessionCounters` minus the one field documented to vary with threading.
fn thread_invariant(counters: &SessionCounters) -> SessionCounters {
    SessionCounters { arena_peak_bytes: 0, ..*counters }
}

#[test]
fn metrics_on_is_bit_for_bit_identical_across_measures_and_backends() {
    let graph = generators::gnm_random(40, 90, 3, 29);
    let prepared = PreparedGraph::new(graph);
    for measure in MEASURES {
        for backend in BACKENDS {
            let run = |metrics: bool| {
                MiningSession::over(&prepared)
                    .measure(measure)
                    .min_support(3.0)
                    .max_edges(2)
                    .enumerator(backend)
                    .metrics(metrics)
                    .run()
                    .expect("mine")
            };
            let off = run(false);
            let on = run(true);
            let context = format!("{measure} under {backend:?}");
            assert!(!off.patterns.is_empty(), "{context}: workload must produce patterns");
            assert_eq!(fingerprints(&on), fingerprints(&off), "{context}: patterns");
            assert_eq!(
                on.final_threshold.to_bits(),
                off.final_threshold.to_bits(),
                "{context}: threshold"
            );
            assert_eq!(on.completion(), off.completion(), "{context}: completion");
            assert_eq!(
                on.stats.candidates_evaluated, off.stats.candidates_evaluated,
                "{context}: evaluations"
            );
            assert_eq!(
                on.stats.candidates_pruned, off.stats.candidates_pruned,
                "{context}: prunes"
            );
            // The counter block is always-on and identically fed in both arms —
            // including the search-step totals the timing spans wrap around.
            assert_eq!(on.stats.counters, off.stats.counters, "{context}: counters");
            // And the timed arm actually timed something beyond the coarse
            // always-on phases (otherwise `metrics(true)` silently did nothing).
            assert!(
                on.stats.phase_timings.exclusive_total_nanos() > 0,
                "{context}: timed run recorded no phase time"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// `patterns_emitted` == the number of `Pattern` events streamed, in both
    /// threshold and top-k sessions, across all backends.  Top-k runs count
    /// emissions (including patterns later evicted from the final k), so the
    /// stream — not the final result set — is the ground truth compared here.
    #[test]
    fn patterns_emitted_counts_streamed_pattern_events(
        seed in 0u64..10_000,
        tau in 2usize..5,
        top_k in 0usize..6, // 0 = threshold mode, otherwise top-k
    ) {
        let top_k = (top_k > 0).then_some(top_k);
        let graph = generators::gnm_random(26, 56, 2, seed);
        let prepared = PreparedGraph::new(graph);
        let backend = BACKENDS[(seed % 3) as usize];
        let mut session = MiningSession::over(&prepared)
            .min_support(tau as f64)
            .max_edges(2)
            .enumerator(backend);
        if let Some(k) = top_k {
            session = session.top_k(k);
        }
        let mut streamed = 0u64;
        let mut summary = None;
        for event in session.stream().expect("stream") {
            match event.expect("event") {
                MiningEvent::Pattern(_) => streamed += 1,
                MiningEvent::LevelCompleted(level) => {
                    // Mid-run snapshots never run ahead of the stream.
                    prop_assert_eq!(level.stats.counters.patterns_emitted, streamed,
                        "level snapshot, seed {}, {:?}", seed, backend);
                }
                MiningEvent::Finished(s) => summary = Some(s),
                MiningEvent::Undecided(_) => {}
            }
        }
        let summary = summary.expect("finished frame");
        prop_assert_eq!(summary.stats.counters.patterns_emitted, streamed,
            "final counter, seed {}, {:?}, top_k {:?}", seed, backend, top_k);
        if top_k.is_none() {
            // Threshold mode keeps everything it emits.
            prop_assert_eq!(summary.num_patterns as u64, streamed,
                "threshold-mode result set, seed {}", seed);
        }
    }

    /// Merged per-worker counter shards == the single-threaded totals: the
    /// candidate partition changes which arena does the work, never how much
    /// work is done.  `arena_peak_bytes` is the documented exception and is
    /// excluded from the equality; everything else — and the mined patterns —
    /// must be identical.
    ///
    /// `arena_peak_bytes` itself is pinned to its *gauge* contract: the
    /// reported value is the per-worker **maximum** arena footprint, never a
    /// sum across workers.  A max over per-worker arenas (each serving a
    /// subset of the candidates) cannot exceed the single arena that served
    /// them all; a sum over W busy workers would.  The 2x slack keeps the
    /// assertion from tipping over on allocator rounding while still failing
    /// loudly if the merge ever turns additive.
    #[test]
    fn merged_worker_counters_equal_single_threaded_totals(seed in 0u64..10_000) {
        let graph = generators::gnm_random(28, 60, 2, seed);
        let prepared = PreparedGraph::new(graph);
        let measure = MEASURES[(seed % 4) as usize];
        let backend = BACKENDS[((seed / 4) % 3) as usize];
        let run = |threads: usize| {
            MiningSession::over(&prepared)
                .measure(measure)
                .min_support(2.0)
                .max_edges(2)
                .enumerator(backend)
                .threads(threads)
                .run()
                .expect("mine")
        };
        let sequential = run(1);
        // The naive backend never grows an arena, so a zero peak is legitimate
        // — but then the parallel runs must report zero too (a max of zeros).
        let sequential_peak = sequential.stats.counters.arena_peak_bytes;
        for threads in [3usize, 0] {
            let parallel = run(threads);
            let context = format!("seed {seed}, {measure} under {backend:?}, {threads} threads");
            prop_assert_eq!(fingerprints(&parallel), fingerprints(&sequential),
                "patterns, {}", &context);
            prop_assert_eq!(
                thread_invariant(&parallel.stats.counters),
                thread_invariant(&sequential.stats.counters),
                "merged shards diverged from sequential totals, {}", &context
            );
            let parallel_peak = parallel.stats.counters.arena_peak_bytes;
            prop_assert_eq!(parallel_peak > 0, sequential_peak > 0,
                "arena peak appeared or vanished in the merge, {}", &context);
            prop_assert!(parallel_peak <= 2 * sequential_peak,
                "arena_peak_bytes looks summed, not maxed: parallel {} vs sequential {}, {}",
                parallel_peak, sequential_peak, &context);
        }
    }
}
