//! # ffsm-hypergraph — hypergraph substrate
//!
//! The paper's framework represents pattern occurrences/instances as edges of a
//! *hypergraph* whose vertices are pattern-node images (Section 3.1).  This crate
//! provides that substrate independently of any graph-mining concern:
//!
//! * [`Hypergraph`] — storage, duals (Definition 3.1.2), uniformity checks and
//!   minimal-edge reduction.
//! * [`vertex_cover`] — exact branch-and-bound and greedy k-approximate minimum
//!   vertex covers (the MVC support measure, Definition 3.3.2).
//! * [`matching`] — exact and greedy maximum independent edge sets / set packing
//!   (the MIES support measure, Definition 4.2.1).
//! * [`independent_set`] — maximum independent sets in ordinary graphs (the classic
//!   overlap-graph MIS measure of Vanetik et al. that the paper compares against).
//!
//! All exact solvers are branch-and-bound searches with a configurable node budget:
//! they report whether the returned value is proven optimal, so callers can fall back
//! to the approximation algorithms on adversarial inputs instead of hanging.
//!
//! ```
//! use ffsm_hypergraph::{Hypergraph, SearchBudget};
//! use ffsm_hypergraph::vertex_cover::exact_vertex_cover;
//! use ffsm_hypergraph::matching::exact_independent_edge_set;
//!
//! // The occurrence hypergraph of the paper's Figure 6 (vertices renumbered 0..7):
//! // four edges around hub 0 and three around hub 7.
//! let mut h = Hypergraph::new(8);
//! for e in [[0, 4], [0, 5], [0, 6], [0, 7], [1, 7], [2, 7], [3, 7]] {
//!     h.add_edge(e.to_vec()).unwrap();
//! }
//! assert_eq!(exact_vertex_cover(&h, SearchBudget::default()).value, 2);     // σMVC
//! assert_eq!(exact_independent_edge_set(&h, SearchBudget::default()).value, 2); // σMIES
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod clique_cover;
pub mod connectivity;
mod hypergraph;
pub mod independent_set;
pub mod matching;
pub mod parallel;
pub mod reduction;
pub mod set_cover;
pub mod statistics;
pub mod transversal;
pub mod vertex_cover;

pub use hypergraph::{EdgeId, Hypergraph, HypergraphError};
pub use statistics::HypergraphStatistics;

/// Result of an exact combinatorial search that may have been truncated by its node
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactResult {
    /// The best objective value found (cover size, matching size, …).
    pub value: usize,
    /// The vertices / edges achieving it.
    pub witness: Vec<usize>,
    /// `true` if the search proved optimality, `false` if the node budget ran out.
    pub optimal: bool,
}

/// Budget for exact branch-and-bound searches (number of explored search nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget(pub usize);

impl Default for SearchBudget {
    fn default() -> Self {
        // Generous for the instance sizes the experiments produce, small enough to
        // never hang a test run even when a branch-and-bound node costs O(|V|) work.
        SearchBudget(300_000)
    }
}
