//! Top-k mining, parallel mining and result condensation on a chemical-style graph.
//!
//! This is the "downstream application" view of the paper: the same miner run with an
//! over-estimating measure (MNI) versus a conservative one (MVC) reports different
//! frequent-pattern sets; top-k mining removes the need to guess a threshold; and the
//! maximal/closed condensations summarise the output.  Everything runs through the
//! one [`MiningSession`] entry point — sequential, parallel and top-k are modes, not
//! separate APIs.
//!
//! Run with: `cargo run --release --example topk_mining`

use ffsm::core::MeasureKind;
use ffsm::graph::datasets;
use ffsm::miner::postprocess::{closed_patterns, maximal_patterns};
use ffsm::miner::MiningSession;

fn main() {
    let dataset = datasets::chemical_like(60, 23);
    println!("dataset `{}`: {}\n", dataset.name, dataset.description);

    // 1. Threshold mining under two measures.
    let tau = 12.0;
    for measure in [MeasureKind::Mni, MeasureKind::Mvc] {
        let result = MiningSession::on(&dataset.graph)
            .measure(measure)
            .min_support(tau)
            .max_edges(3)
            .run()
            .expect("valid session");
        println!(
            "threshold mining, tau = {tau}, measure = {measure:<4}: {:>3} frequent patterns ({} maximal, {} closed), {} candidates evaluated",
            result.len(),
            maximal_patterns(&result).len(),
            closed_patterns(&result).len(),
            result.stats.candidates_evaluated
        );
    }

    // 2. The same threshold with every core evaluating candidates (identical results).
    let parallel = MiningSession::on(&dataset.graph)
        .min_support(tau)
        .max_edges(3)
        .threads(0) // one worker per available core
        .run()
        .expect("valid session");
    println!(
        "parallel mining (all cores):              {:>3} frequent patterns in {:?}",
        parallel.len(),
        parallel.stats.elapsed
    );

    // 3. Top-k mining: no threshold guessing.
    let k = 8;
    let topk = MiningSession::on(&dataset.graph)
        .min_support(2.0)
        .max_edges(3)
        .top_k(k)
        .run()
        .expect("valid session");
    println!("\ntop-{k} patterns by MNI support:");
    for (rank, p) in topk.patterns.iter().enumerate() {
        println!(
            "  #{:<2} support {:>6.1}  ({} vertices, {} edges, {} occurrences)",
            rank + 1,
            p.support,
            p.pattern.num_vertices(),
            p.pattern.num_edges(),
            p.num_occurrences
        );
    }
    println!(
        "final rising threshold: {:.1} (candidates evaluated: {})",
        topk.final_threshold, topk.stats.candidates_evaluated
    );
}
