//! Delta re-mining: carry per-pattern results across graph epochs.
//!
//! A mining run evaluates the support of every candidate pattern against the
//! data graph.  When the graph changes by a small [`GraphDelta`], most of those
//! evaluations are provably unchanged — the incremental-view-maintenance insight
//! of Berkholz et al. applied to pattern mining.  This module provides the
//! machinery behind [`MiningSession::run_recorded`](crate::MiningSession) and
//! [`MiningSession::run_delta`](crate::MiningSession):
//!
//! * [`EvalCache`] — per-pattern evaluation results of one epoch, keyed by
//!   canonical code: support, occurrence count, and the sorted set of data
//!   vertices **touched** by any occurrence image;
//! * a **pinned existence query** ([`occurrences_touch`]) answering "does this
//!   pattern have an occurrence whose image meets the dirty region?" by rooting
//!   the search at each dirty vertex instead of enumerating everything.
//!
//! ## The reuse argument
//!
//! A cached evaluation is carried forward for a pattern `P` iff
//!
//! 1. the cached enumeration was **complete** (not truncated by the embedding
//!    budget),
//! 2. no cached occurrence touched the dirty region of the *old* graph
//!    (`touched ∩ dirty_old = ∅`), and
//! 3. the *new* graph has no occurrence of `P` touching `dirty_new`
//!    (the pinned existence query).
//!
//! (2) rules out destroyed or renamed occurrences: an occurrence invalidated by
//! an edge/vertex removal, a relabel — or, in induced semantics, by an edge
//! *insertion* between two of its image vertices — has both endpoints of the
//! change in its image, and those are dirty.  (3) rules out created occurrences:
//! a new occurrence must use an inserted edge, an added vertex or a relabelled
//! vertex, all of which are dirty in the new id space.  Together they prove the
//! occurrence sets of the two epochs identical, so the cached support and
//! occurrence count — and the touched set itself, whose vertices were not
//! renamed by (2) — are exact.  The delta run therefore reproduces the cold
//! run **bit for bit**: reused values equal what re-evaluation would compute, so
//! the level-by-level candidate tree (and every threshold decision, including
//! rising top-k thresholds and budget cut-offs) is identical.
//!
//! The cache is sound across thresholds (supports do not depend on τ) but must
//! come from a run with the same measure, measure configuration and enumeration
//! backend over the **immediately preceding** epoch; chain epochs by feeding
//! each `run_delta`'s returned cache into the next.

use ffsm_graph::cancel::CHECK_STRIDE;
use ffsm_graph::canonical::CanonicalCode;
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_graph::{LabeledGraph, Pattern, VertexId};
use std::collections::HashMap;
use std::sync::Arc;

/// One cached per-pattern evaluation (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedEval {
    /// The support computed by the session's measure.
    pub support: f64,
    /// Number of occurrences enumerated for the support.
    pub num_occurrences: usize,
    /// Sorted distinct data vertices appearing in any occurrence image.
    /// `Arc`-shared so carrying an entry across epochs is a refcount bump, not
    /// a copy of a possibly graph-sized vertex list.
    pub touched: Arc<[VertexId]>,
    /// `false` if the enumeration hit its embedding budget; such entries are
    /// never reused (their touched set is partial).
    pub complete: bool,
}

/// Per-pattern evaluation results of one mining run, keyed by canonical code.
///
/// Produced by [`MiningSession::run_recorded`](crate::MiningSession) /
/// [`MiningSession::run_delta`](crate::MiningSession) and consumed by the next
/// epoch's `run_delta`.  Covers **every evaluated candidate** (frequent or not),
/// because the next epoch prunes infrequent candidates from the cache too.
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    entries: HashMap<CanonicalCode, CachedEval>,
}

impl EvalCache {
    /// Number of cached pattern evaluations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached evaluation of the pattern with this canonical code, if any.
    pub fn get(&self, code: &CanonicalCode) -> Option<&CachedEval> {
        self.entries.get(code)
    }

    pub(crate) fn insert(&mut self, code: CanonicalCode, eval: CachedEval) {
        self.entries.insert(code, eval);
    }
}

/// How the engine interacts with evaluation caches (none, record-only, or
/// record + reuse against a prior epoch).
pub(crate) enum CacheMode {
    /// Plain mining: no cache is consulted or produced.
    Off,
    /// Record every evaluation into a fresh [`EvalCache`] (cold epoch-0 run).
    Record,
    /// Reuse a prior epoch's cache where the delta provably allows it, and
    /// record the current epoch's evaluations.
    Delta(DeltaContext),
}

impl CacheMode {
    /// `true` when the run produces an [`EvalCache`].
    pub(crate) fn caching(&self) -> bool {
        !matches!(self, CacheMode::Off)
    }
}

/// The prior cache plus the dirty region, in both id spaces.
pub(crate) struct DeltaContext {
    pub(crate) prior: EvalCache,
    /// Dirty vertices in the previous epoch's id space (sorted).
    pub(crate) dirty_old: Vec<VertexId>,
    /// Dirty vertices in the current epoch's id space (sorted).
    pub(crate) dirty_new: Vec<VertexId>,
}

/// `true` when two sorted vertex slices share an element.  Asymmetric sizes
/// (a handful of dirty vertices against a graph-sized touched set) take the
/// probe-the-longer-side binary-search path; similar sizes merge linearly.
pub(crate) fn sorted_intersects(a: &[VertexId], b: &[VertexId]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return false;
    }
    if small.len() * 16 < large.len() {
        return small.iter().any(|v| large.binary_search(v).is_ok());
    }
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Does `pattern` have any occurrence in `graph` whose image contains a vertex
/// of `dirty`?  Decided by a backtracking search **pinned** at each dirty
/// vertex in turn — cost proportional to the dirty neighbourhood, not to the
/// graph — with the exact occurrence semantics of the enumerators (injective,
/// label-preserving, edge-preserving; non-edge-reflecting unless
/// `config.induced`).
///
/// Conservative exits: disconnected patterns and a fired cancellation token
/// return `true` (the caller then falls back to full re-evaluation, which
/// handles both cases properly).
pub(crate) fn occurrences_touch(
    pattern: &Pattern,
    graph: &LabeledGraph,
    config: &IsoConfig,
    dirty: &[VertexId],
) -> bool {
    let n = pattern.num_vertices();
    if n == 0 || dirty.is_empty() {
        return false;
    }
    if n > graph.num_vertices() {
        return false;
    }
    if !pattern.is_connected() {
        return true;
    }
    let mut search = PinnedSearch {
        pattern,
        graph,
        config,
        order: Vec::with_capacity(n),
        earlier: Vec::with_capacity(n),
        assignment: vec![None; n],
        used: vec![false; graph.num_vertices()],
        steps: 0,
        cancelled: false,
    };
    // An occurrence touches `dirty` iff some pattern vertex maps onto some dirty
    // vertex: pin every (pattern vertex, dirty vertex) pair in turn.
    for root in pattern.vertices() {
        search.set_root(root);
        for &d in dirty {
            debug_assert!((d as usize) < graph.num_vertices(), "dirty ids are current");
            if graph.label(d) != pattern.label(root) || graph.degree(d) < pattern.degree(root) {
                continue;
            }
            search.assignment[root as usize] = Some(d);
            search.used[d as usize] = true;
            let found = search.extend(1);
            search.assignment[root as usize] = None;
            search.used[d as usize] = false;
            if found || search.cancelled {
                return true;
            }
        }
    }
    false
}

/// Backtracking search for one occurrence extending a pinned root assignment.
///
/// This deliberately mirrors the occurrence semantics of
/// `ffsm_graph::isomorphism::Search` (injective, label-preserving,
/// edge-preserving, optional induced mode) without reusing it: the naive
/// enumerator has no pinned-root entry point, and the reuse proof needs *this*
/// query to agree with whatever the enumerators produce.  The agreement is
/// enforced by the `pinned_query_matches_full_enumeration_oracle` proptest
/// below, which diffs it against `enumerate_embeddings` in both semantics —
/// any semantic drift in the enumerators breaks that test, not the proof.
struct PinnedSearch<'a> {
    pattern: &'a Pattern,
    graph: &'a LabeledGraph,
    config: &'a IsoConfig,
    /// BFS order over the (connected) pattern, rooted at the pinned vertex.
    order: Vec<VertexId>,
    /// For each order position, the pattern neighbours that appear earlier.
    earlier: Vec<Vec<VertexId>>,
    assignment: Vec<Option<VertexId>>,
    used: Vec<bool>,
    steps: u32,
    /// Set when the cancellation token fires mid-search; the caller treats the
    /// query as "touches" so the full (itself cancellable) path takes over.
    cancelled: bool,
}

impl PinnedSearch<'_> {
    /// Recompute the BFS order and earlier-neighbour lists for a new root.
    fn set_root(&mut self, root: VertexId) {
        let n = self.pattern.num_vertices();
        self.order.clear();
        self.order.push(root);
        let mut placed = vec![false; n];
        placed[root as usize] = true;
        let mut head = 0;
        while head < self.order.len() {
            let v = self.order[head];
            head += 1;
            for &w in self.pattern.neighbors(v) {
                if !placed[w as usize] {
                    placed[w as usize] = true;
                    self.order.push(w);
                }
            }
        }
        debug_assert_eq!(self.order.len(), n, "pattern is connected");
        let position: Vec<usize> = {
            let mut pos = vec![0usize; n];
            for (i, &v) in self.order.iter().enumerate() {
                pos[v as usize] = i;
            }
            pos
        };
        self.earlier.clear();
        for (i, &v) in self.order.iter().enumerate() {
            self.earlier.push(
                self.pattern
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| position[w as usize] < i)
                    .collect(),
            );
        }
    }

    /// Exactly the naive enumerator's feasibility test.
    fn feasible(&self, pv: VertexId, gv: VertexId, depth: usize) -> bool {
        if self.used[gv as usize]
            || self.graph.label(gv) != self.pattern.label(pv)
            || self.graph.degree(gv) < self.pattern.degree(pv)
        {
            return false;
        }
        for &pn in &self.earlier[depth] {
            let gn = self.assignment[pn as usize].expect("earlier vertex assigned");
            if !self.graph.has_edge(gv, gn) {
                return false;
            }
        }
        if self.config.induced {
            for (p_other, assigned) in self.assignment.iter().enumerate() {
                if let Some(g_other) = assigned {
                    let p_other = p_other as VertexId;
                    if p_other != pv
                        && !self.pattern.has_edge(pv, p_other)
                        && self.graph.has_edge(gv, *g_other)
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// `true` once any full occurrence extends the current partial assignment.
    fn extend(&mut self, depth: usize) -> bool {
        self.steps += 1;
        if self.steps >= CHECK_STRIDE {
            self.steps = 0;
            if self.config.cancel.is_cancelled() {
                self.cancelled = true;
                return false;
            }
        }
        if depth == self.order.len() {
            return true;
        }
        let pv = self.order[depth];
        // BFS order on a connected pattern guarantees an earlier neighbour; scan
        // the cheapest matched image's adjacency list.
        let pivot = self.earlier[depth]
            .iter()
            .copied()
            .min_by_key(|&pn| self.graph.degree(self.assignment[pn as usize].expect("assigned")))
            .expect("BFS order has an earlier neighbour");
        let gn = self.assignment[pivot as usize].expect("assigned");
        let graph = self.graph;
        for &gv in graph.neighbors(gn) {
            if self.feasible(pv, gv, depth) {
                self.assignment[pv as usize] = Some(gv);
                self.used[gv as usize] = true;
                let found = self.extend(depth + 1);
                self.assignment[pv as usize] = None;
                self.used[gv as usize] = false;
                if found || self.cancelled {
                    return found;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::isomorphism::enumerate_embeddings;
    use ffsm_graph::{generators, patterns, Label};

    #[test]
    fn sorted_intersects_merges() {
        assert!(sorted_intersects(&[1, 4, 9], &[2, 4]));
        assert!(!sorted_intersects(&[1, 4, 9], &[2, 5]));
        assert!(!sorted_intersects(&[], &[1]));
    }

    /// Oracle: the pinned query must agree with "enumerate everything and check".
    fn oracle(
        pattern: &Pattern,
        graph: &LabeledGraph,
        config: &IsoConfig,
        dirty: &[VertexId],
    ) -> bool {
        enumerate_embeddings(pattern, graph, config.clone())
            .embeddings
            .iter()
            .any(|emb| emb.iter().any(|v| dirty.binary_search(v).is_ok()))
    }

    #[test]
    fn pinned_query_matches_full_enumeration_oracle() {
        let graph = generators::community_graph(2, 10, 0.4, 0.05, 3, 13);
        let config = IsoConfig::default();
        let shapes = [
            patterns::single_edge(Label(0), Label(1)),
            patterns::uniform_path(3, Label(0)),
            patterns::triangle(Label(0), Label(1), Label(2)),
            patterns::triangle(Label(0), Label(0), Label(0)),
        ];
        for pattern in &shapes {
            for dirty in [vec![], vec![0], vec![3, 7], vec![0, 5, 11, 19]] {
                assert_eq!(
                    occurrences_touch(pattern, &graph, &config, &dirty),
                    oracle(pattern, &graph, &config, &dirty),
                    "pattern {pattern:?}, dirty {dirty:?}"
                );
            }
        }
    }

    #[test]
    fn pinned_query_respects_induced_semantics() {
        // Path-of-3 in a triangle: non-induced occurrences exist, induced do not.
        let graph = LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let pattern = patterns::uniform_path(3, Label(0));
        let dirty = vec![0, 1, 2];
        assert!(occurrences_touch(&pattern, &graph, &IsoConfig::default(), &dirty));
        let induced = IsoConfig { induced: true, ..IsoConfig::default() };
        assert!(!occurrences_touch(&pattern, &graph, &induced, &dirty));
    }

    #[test]
    fn disconnected_patterns_are_conservative() {
        let mut pattern = Pattern::new();
        pattern.add_vertex(Label(0));
        pattern.add_vertex(Label(0));
        let graph = LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        assert!(occurrences_touch(&pattern, &graph, &IsoConfig::default(), &[1]));
    }

    #[test]
    fn cache_stores_and_serves_entries() {
        use ffsm_graph::canonical::canonical_code;
        let mut cache = EvalCache::default();
        assert!(cache.is_empty());
        let code = canonical_code(&patterns::single_edge(Label(0), Label(1)));
        cache.insert(
            code.clone(),
            CachedEval {
                support: 3.0,
                num_occurrences: 6,
                touched: Arc::from(vec![1, 2]),
                complete: true,
            },
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&code).unwrap().support, 3.0);
        let other = canonical_code(&patterns::single_edge(Label(5), Label(5)));
        assert!(cache.get(&other).is_none());
    }
}
