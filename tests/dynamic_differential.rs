//! Differential harness for the dynamic-graph subsystem, alongside
//! `overlap_differential.rs` / `match_differential.rs`:
//!
//! * **index patch == rebuild** — `GraphIndex::apply_delta` over the
//!   `GraphDelta` of a random update batch equals `GraphIndex::build` of the
//!   updated graph, chained across several batches (proptest);
//! * **delta re-mine == cold full mine** — `MiningSession::run_delta` over a
//!   random update batch reproduces a cold `run()` of the new epoch bit-for-bit
//!   (canonical codes, support bits, occurrence counts, final threshold,
//!   completion and evaluation counts) across all four paper measures
//!   (MNI / MI / MVC / MIS) and both enumerator backends, with the cache
//!   chained across consecutive epochs through `IncrementalMiner`;
//! * the **reuse path actually fires** on small deltas (it would be trivially
//!   "correct" to re-evaluate everything — the speedup claim needs reuse).
//!
//! Update batches are generated against a step-wise clone of the evolving graph
//! so every generated update is valid in context; the proptest shim seeds each
//! generator deterministically from the test name, so every run replays the
//! same fixed case sequence.

use ffsm::core::{EnumeratorBackend, GraphUpdate, MeasureKind};
use ffsm::dynamic::{DynamicGraph, IncrementalMiner};
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::{apply_batch, generators, Label, LabeledGraph};
use ffsm::matching::GraphIndex;
use ffsm::miner::{MiningResult, MiningSession, PreparedGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One random-but-valid update against the current state of `graph`, applied to
/// the mirror immediately so later updates in the batch see its effect.
fn random_update(graph: &mut LabeledGraph, rng: &mut StdRng, num_labels: u32) -> GraphUpdate {
    loop {
        let n = graph.num_vertices() as u32;
        let update = match rng.gen_range(0..6u32) {
            0 => GraphUpdate::AddVertex(Label(rng.gen_range(0..num_labels))),
            1 | 2 if n >= 2 => {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
                GraphUpdate::AddEdge(u, v)
            }
            3 if graph.num_edges() > 0 => {
                let edges: Vec<_> = graph.edges().collect();
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                GraphUpdate::RemoveEdge(u, v)
            }
            4 if n > 4 => GraphUpdate::RemoveVertex(rng.gen_range(0..n)),
            5 if n >= 1 => {
                GraphUpdate::Relabel(rng.gen_range(0..n), Label(rng.gen_range(0..num_labels)))
            }
            _ => continue,
        };
        apply_batch(graph, &[update]).expect("generated update is valid");
        return update;
    }
}

/// A batch of `size` random updates, valid in sequence against `graph` (which
/// ends up with the batch applied).
fn random_batch(
    graph: &mut LabeledGraph,
    rng: &mut StdRng,
    size: usize,
    num_labels: u32,
) -> Vec<GraphUpdate> {
    (0..size).map(|_| random_update(graph, rng, num_labels)).collect()
}

type PatternFingerprint = (Vec<u64>, u64, usize);

fn fingerprints(result: &MiningResult) -> Vec<PatternFingerprint> {
    result
        .patterns
        .iter()
        .map(|p| {
            (canonical_code(&p.pattern).as_slice().to_vec(), p.support.to_bits(), p.num_occurrences)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// Incremental index maintenance vs the full-rebuild oracle, chained over
    /// several random batches (including vertex removals that rename ids).
    #[test]
    fn index_patch_equals_rebuild_on_random_batches(seed in 0u64..10_000) {
        let mut graph = generators::community_graph(2, 10, 0.4, 0.06, 4, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let mut index = GraphIndex::build(&graph);
        for round in 0..4 {
            let mut next = graph.clone();
            let batch = random_batch(&mut next, &mut rng, 1 + (seed as usize + round) % 6, 4);
            let delta = apply_batch(&mut graph, &batch).expect("batch replays");
            prop_assert_eq!(&graph, &next, "mirror and store agree");
            index.apply_delta(&graph, &delta);
            prop_assert_eq!(&index, &GraphIndex::build(&graph),
                "seed {}, round {}, batch {:?}", seed, round, &batch);
        }
    }

    /// Delta re-mine == cold full mine, bit for bit, across all four paper
    /// measures and both enumerator backends.
    #[test]
    fn delta_remine_equals_cold_mine_across_measures_and_backends(seed in 0u64..10_000) {
        let base = generators::community_graph(2, 9, 0.45, 0.08, 3, seed);
        prop_assume!(base.num_edges() >= 4);
        let mut mirror = base.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDE17A);
        let batch = random_batch(&mut mirror, &mut rng, 1 + (seed as usize) % 5, 3);
        let prepared = PreparedGraph::new(base);
        for measure in [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc, MeasureKind::Mis] {
            for backend in [EnumeratorBackend::CandidateSpace, EnumeratorBackend::Naive] {
                let context = format!("seed {seed}, {measure}, {backend:?}, batch {batch:?}");
                let session = |p: &PreparedGraph| {
                    MiningSession::over(p)
                        .measure(measure)
                        .min_support(2.0)
                        .max_edges(2)
                        .enumerator(backend)
                };
                let (_, cache) = session(&prepared).run_recorded().expect("valid session");
                let (next, delta) = prepared.apply_updates(&batch).expect("valid batch");
                let cold = session(&next).run().expect("valid session");
                let (incremental, _) =
                    session(&next).run_delta(cache, &delta).expect("valid session");
                prop_assert_eq!(fingerprints(&incremental), fingerprints(&cold),
                    "patterns diverged: {}", &context);
                prop_assert_eq!(incremental.final_threshold.to_bits(),
                    cold.final_threshold.to_bits(), "threshold: {}", &context);
                prop_assert_eq!(incremental.completion(), cold.completion(),
                    "completion: {}", &context);
                prop_assert_eq!(incremental.stats.candidates_evaluated,
                    cold.stats.candidates_evaluated, "evaluation counts: {}", &context);
            }
        }
    }

    /// The cache chains across consecutive epochs: every epoch of a random
    /// update stream re-mines to exactly the cold result (MNI; parallel
    /// evaluation on the cold side to also cross the thread partition).
    #[test]
    fn chained_epochs_equal_cold_mines(seed in 0u64..10_000) {
        let base = generators::community_graph(2, 9, 0.5, 0.08, 3, seed.wrapping_add(77));
        prop_assume!(base.num_edges() >= 4);
        let mut mirror = base.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A1);
        let mut store = DynamicGraph::new(base);
        let config = MiningSession::over(store.current().prepared())
            .min_support(2.0)
            .max_edges(2)
            .config()
            .clone();
        let mut miner = IncrementalMiner::new(config.clone());
        miner.mine(store.current()).expect("epoch 0");
        for round in 0..3 {
            let batch = random_batch(&mut mirror, &mut rng, 1 + (round + seed as usize) % 4, 3);
            let snapshot = store.apply(&batch).expect("valid batch").clone();
            prop_assert!(miner.is_chained_to(snapshot.epoch()));
            let incremental = miner.mine(&snapshot).expect("delta mine");
            let cold = MiningSession::with_config(snapshot.prepared(), config.clone())
                .threads(3)
                .run()
                .expect("cold mine");
            prop_assert_eq!(fingerprints(&incremental), fingerprints(&cold),
                "seed {}, round {}, batch {:?}", seed, round, &batch);
        }
    }
}

/// Reuse must actually fire on a small delta to a larger graph — the speedup
/// contract, not just the correctness contract.
#[test]
fn small_deltas_reuse_most_evaluations() {
    let graph = generators::gnm_random(600, 900, 6, 11);
    let prepared = PreparedGraph::new(graph);
    let session = |p: &PreparedGraph| MiningSession::over(p).min_support(4.0).max_edges(2);
    let (_, cache) = session(&prepared).run_recorded().unwrap();
    let (next, delta) = prepared
        .apply_updates(&[GraphUpdate::AddEdge(0, 1), GraphUpdate::RemoveEdge(2, 3)])
        .or_else(|_| prepared.apply_updates(&[GraphUpdate::AddEdge(0, 2)]))
        .unwrap();
    let (incremental, _) = session(&next).run_delta(cache, &delta).unwrap();
    let evaluated = incremental.stats.candidates_evaluated;
    let reused = incremental.stats.evaluations_reused;
    assert!(
        reused * 2 > evaluated,
        "a 2-edge delta on a 600-vertex graph must reuse most evaluations \
         (reused {reused} of {evaluated})"
    );
    // And the reused run still matches the cold oracle.
    let cold = session(&next).run().unwrap();
    assert_eq!(fingerprints(&incremental), fingerprints(&cold));
}

/// Relabels shift patterns between label classes; make sure a relabel-heavy
/// stream stays correct under the conservative MIS measure too.
#[test]
fn relabel_stream_stays_exact_under_mis() {
    let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
    let base = generators::replicated(&triangle, 5, false);
    let prepared = PreparedGraph::new(base);
    let session = |p: &PreparedGraph| {
        MiningSession::over(p).measure(MeasureKind::Mis).min_support(2.0).max_edges(3)
    };
    let (_, cache) = session(&prepared).run_recorded().unwrap();
    let batch = [
        GraphUpdate::Relabel(0, Label(1)),
        GraphUpdate::Relabel(4, Label(0)),
        GraphUpdate::AddEdge(0, 3),
    ];
    let (next, delta) = prepared.apply_updates(&batch).unwrap();
    let cold = session(&next).run().unwrap();
    let (incremental, _) = session(&next).run_delta(cache, &delta).unwrap();
    assert_eq!(fingerprints(&incremental), fingerprints(&cold));
}
