//! Integration test: every support-measure value the paper states for its worked
//! examples (Figures 1–10) is reproduced exactly, end to end through the public API
//! of the workspace crates.

use ffsm::core::measures::{MeasureConfig, MiStrategy, SupportMeasures};
use ffsm::core::occurrences::OccurrenceSet;
use ffsm::graph::figures;
use ffsm::graph::isomorphism::IsoConfig;

fn calculator(example: &ffsm::graph::figures::FigureExample) -> SupportMeasures {
    let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
    SupportMeasures::new(occ, MeasureConfig::default())
}

#[test]
fn figure2_triangle_overestimation() {
    // "the triangle-shaped pattern has 6 occurrences ... while it has only one
    //  instance"; "the MIS support of the triangle-shaped pattern is 1 while MNI
    //  support is 3".
    let m = calculator(&figures::figure2());
    assert_eq!(m.occurrence_count(), 6);
    assert_eq!(m.instance_count(), 1);
    assert_eq!(m.mis().value, 1);
    assert_eq!(m.mni(), 3);
}

#[test]
fn figure4_mni_vs_mi() {
    // "MNI = 2" and "MI = 1" (the transitive pair {v2, v3} has one image set).
    let m = calculator(&figures::figure4());
    assert_eq!(m.mni(), 2);
    assert_eq!(m.mi(), 1);
    assert_eq!(m.mi_with(MiStrategy::AutomorphismOrbits), 1);
}

#[test]
fn figure5_mvc_stays_one_under_extension() {
    // "when the pattern {v1,v2,v3} is extended to include {v4}, the MVC support is
    //  still 1".
    let triangle = calculator(&figures::figure2());
    let extended = calculator(&figures::figure5());
    assert_eq!(triangle.mvc().value, 1);
    assert_eq!(extended.mvc().value, 1);
}

#[test]
fn figure6_partial_overlap_values() {
    // "MIS = 2, MVC = 2, MI = 4, MNI = 4".
    let m = calculator(&figures::figure6());
    assert_eq!(m.mis().value, 2);
    assert_eq!(m.mvc().value, 2);
    assert_eq!(m.mi(), 4);
    assert_eq!(m.mni(), 4);
    // "the vertex set {1, 8} is a minimum vertex cover" — check that a cover of size 2
    // exists through the hypergraph directly.
    let h = m.hypergraph(Default::default());
    let cover = ffsm::hypergraph::vertex_cover::exact_vertex_cover(h, Default::default());
    assert_eq!(cover.value, 2);
}

#[test]
fn figure8_mis_equals_mies() {
    // "the MIS support in overlap graph is 2 ... The MIES in instance hypergraph is
    //  also 2."
    let m = calculator(&figures::figure8());
    assert_eq!(m.mis().value, 2);
    assert_eq!(m.mies().value, 2);
}

#[test]
fn figure9_mi_is_two() {
    // Section 4.5: "it has two images {2, 3} and {3, 4}, and MI = 2".
    let m = calculator(&figures::figure9());
    assert_eq!(m.mi(), 2);
}

#[test]
fn full_chain_on_every_figure() {
    for example in figures::all_figures() {
        let report = ffsm::core::verify_bounding_chain(
            &example.pattern,
            &example.graph,
            &MeasureConfig::default(),
        );
        assert!(
            report.holds(),
            "bounding chain violated on {}: {:?}",
            example.name,
            report.violations()
        );
    }
}

#[test]
fn figure2_mni_image_counts_per_node() {
    // "node v1 in the pattern has 3 distinct images ... # of images: 3 3 3".
    let example = figures::figure2();
    let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
    for node in example.pattern.vertices() {
        assert_eq!(occ.node_images(node).len(), 3);
    }
}
