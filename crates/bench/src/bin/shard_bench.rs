//! `shard_bench` — the partitioned out-of-core mining gate behind
//! `BENCH_shard.json`.
//!
//! Partitioned mining trades peak memory for repeated halo work: instead of
//! holding one whole-graph structure resident, the miner holds at most
//! `--max-resident` interior+halo shards and reloads the rest from disk.  This
//! bench sweeps the shard count over a community graph substantially larger
//! than any other bench workload and records, per K:
//!
//! * wall time (min-of-rounds) of the sharded run against the unsharded
//!   oracle, with results cross-checked (pattern count and threshold bits);
//! * the shard store's **peak resident bytes** under a spilled `--max-resident
//!   2` configuration, against the whole graph's bytes under the same
//!   documented proxy (16 B/vertex + 16 B/edge, global-id maps counted on the
//!   shard side, derived indexes excluded on both) — the out-of-core claim
//!   made measurable.
//!
//! Acceptance gates (asserted after the JSON is written, so CI uploads the
//! numbers even when a gate trips):
//!
//! * at the largest K of the sweep, spilled peak residency ≤ 50% of the
//!   whole-graph bytes;
//! * every sharded run stays within 2x of the unsharded wall time (plus a
//!   small absolute slack for noisy CI machines).
//!
//! Usage: `shard_bench [--communities N] [--community-size N] [--tau T]
//! [--max-edges N] [--rounds K] [--out PATH]` (defaults: 32 communities of
//! 200, tau 40, max-edges 2, 3 rounds, `BENCH_shard.json`).

use ffsm_bench::{flag_value, report::json_string};
use ffsm_core::MeasureKind;
use ffsm_graph::generators;
use ffsm_miner::{MiningResult, MiningSession, PreparedGraph, ShardedSession};
use ffsm_shard::{PartitionSpec, PartitionedGraph};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn mine_unsharded(
    prepared: &PreparedGraph,
    tau: f64,
    max_edges: usize,
) -> (Duration, MiningResult) {
    let start = Instant::now();
    let result = MiningSession::over(prepared)
        .measure(MeasureKind::Mni)
        .min_support(tau)
        .max_edges(max_edges)
        .run()
        .expect("unsharded mine");
    (start.elapsed(), result)
}

struct ShardedRun {
    elapsed: Duration,
    result: MiningResult,
    peak_resident_bytes: u64,
    loads: u64,
}

fn mine_sharded(partitioned: &Arc<PartitionedGraph>, tau: f64, max_edges: usize) -> ShardedRun {
    let start = Instant::now();
    let (result, run) = ShardedSession::over(partitioned)
        .measure(MeasureKind::Mni)
        .min_support(tau)
        .max_edges(max_edges)
        .run_detailed()
        .expect("sharded mine");
    ShardedRun {
        elapsed: start.elapsed(),
        result,
        peak_resident_bytes: run.store.peak_resident_bytes,
        loads: run.store.loads,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let communities: usize = flag_value(&args, "--communities")
        .map(|v| v.parse().expect("--communities expects a number"))
        .unwrap_or(32);
    let community_size: usize = flag_value(&args, "--community-size")
        .map(|v| v.parse().expect("--community-size expects a number"))
        .unwrap_or(200);
    let tau: f64 = flag_value(&args, "--tau")
        .map(|v| v.parse().expect("--tau expects a number"))
        .unwrap_or(40.0);
    let max_edges: usize = flag_value(&args, "--max-edges")
        .map(|v| v.parse().expect("--max-edges expects a number"))
        .unwrap_or(2);
    let rounds: usize = flag_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds expects a number"))
        .unwrap_or(3);
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_shard.json").to_string();

    // ~4x+ larger than any other bench workload (serve_bench tops out at 800
    // vertices): 32 communities of 200 = 6,400 vertices, sparse cross-
    // community edges so vertex-range shards cut little real structure.
    let graph = generators::community_graph(communities, community_size, 0.02, 0.00002, 6, 23);
    let n = graph.num_vertices();
    let m = graph.num_edges();
    println!("workload: {communities} communities of {community_size} -> {n} vertices, {m} edges");

    let prepared = PreparedGraph::new(graph.clone());
    let mut base_elapsed = Duration::MAX;
    let mut base = None;
    for _ in 0..rounds {
        let (elapsed, result) = mine_unsharded(&prepared, tau, max_edges);
        base_elapsed = base_elapsed.min(elapsed);
        base = Some(result);
    }
    let base = base.expect("at least one round");
    println!(
        "unsharded: {} patterns at tau {tau} in {base_elapsed:?} (min of {rounds})",
        base.len()
    );

    let shard_counts = [1usize, 2, 4, 8];
    let max_resident = 2usize;
    let mut entries = Vec::new();
    let mut whole_bytes = 0u64;
    let mut spilled_peaks = std::collections::BTreeMap::new();
    let mut resident_times = Vec::new();
    for k in shard_counts {
        let spec = PartitionSpec::vertex_range(k, max_edges);
        // Fully resident sweep: the wall-time story.
        let partitioned = Arc::new(PartitionedGraph::build(&graph, spec).expect("partition"));
        whole_bytes = partitioned.whole_graph_bytes();
        let mut best: Option<ShardedRun> = None;
        for _ in 0..rounds {
            let run = mine_sharded(&partitioned, tau, max_edges);
            assert_eq!(run.result.len(), base.len(), "K={k}: pattern count diverged");
            assert_eq!(
                run.result.final_threshold.to_bits(),
                base.final_threshold.to_bits(),
                "K={k}: threshold diverged"
            );
            best = Some(match best {
                Some(b) if b.elapsed <= run.elapsed => b,
                _ => run,
            });
        }
        let resident = best.expect("rounds >= 1");
        resident_times.push((k, resident.elapsed));

        // Spilled run: the memory story.  One round is enough — peak residency
        // is deterministic, and the wall-time gate uses the resident sweep.
        let partitioned = Arc::new(PartitionedGraph::build(&graph, spec).expect("partition"));
        let dir = std::env::temp_dir().join(format!("ffsm-shard-bench-{}-{k}", std::process::id()));
        partitioned.spill_to_disk(&dir, max_resident).expect("spill");
        let spilled = mine_sharded(&partitioned, tau, max_edges);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(spilled.result.len(), base.len(), "K={k} spilled: pattern count diverged");
        spilled_peaks.insert(k, spilled.peak_resident_bytes);

        let ratio = resident.elapsed.as_secs_f64() / base_elapsed.as_secs_f64().max(1e-9);
        let memory_ratio = spilled.peak_resident_bytes as f64 / whole_bytes.max(1) as f64;
        println!(
            "K={k}: resident {:?} ({ratio:.2}x), spilled {:?} ({} loads), \
             peak resident {} / whole {} bytes ({memory_ratio:.2}x)",
            resident.elapsed,
            spilled.elapsed,
            spilled.loads,
            spilled.peak_resident_bytes,
            whole_bytes
        );
        entries.push(format!(
            "    {{\"shards\": {k}, \"max_resident\": {max_resident}, \
             \"resident_us\": {}, \"spilled_us\": {}, \"unsharded_us\": {}, \
             \"wall_ratio\": {ratio:.4}, \"loads\": {}, \
             \"peak_resident_bytes\": {}, \"whole_graph_bytes\": {whole_bytes}, \
             \"memory_ratio\": {memory_ratio:.4}}}",
            resident.elapsed.as_micros(),
            spilled.elapsed.as_micros(),
            base_elapsed.as_micros(),
            spilled.loads,
            spilled.peak_resident_bytes,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": {},\n  \"vertices\": {n},\n  \"edges\": {m},\n  \"tau\": {tau},\n  \
         \"max_edges\": {max_edges},\n  \"patterns\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        json_string("shard_sweep"),
        base.len(),
        entries.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write perf report");
    println!("wrote {out_path}");

    // Gates — after the JSON, so a trip still leaves the numbers in CI.
    let largest = *shard_counts.last().expect("non-empty sweep");
    let peak = spilled_peaks[&largest];
    assert!(
        2 * peak <= whole_bytes,
        "K={largest} with max_resident {max_resident}: peak residency {peak} bytes exceeds 50% \
         of the whole graph ({whole_bytes} bytes) — the out-of-core claim no longer holds"
    );
    let budget =
        Duration::from_nanos((base_elapsed.as_nanos() as u64) * 2) + Duration::from_millis(250);
    for (k, elapsed) in resident_times {
        assert!(
            elapsed <= budget,
            "K={k}: sharded wall time {elapsed:?} exceeds 2x the unsharded {base_elapsed:?} \
             (budget {budget:?}) — halo duplication has outgrown its budget"
        );
    }
}
