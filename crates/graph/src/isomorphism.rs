//! Subgraph-isomorphism enumeration.
//!
//! An **occurrence** of a pattern `P` in a data graph `G` (Definition 2.1.8) is an
//! injective, label-preserving map `f : V_P → V_G` such that every pattern edge maps
//! to a data-graph edge.  (Occurrences are *not* required to be induced; an optional
//! induced mode is provided for completeness.)
//!
//! The enumerator is a VF2-flavoured backtracking search:
//!
//! * pattern vertices are visited in a connectivity-aware order that starts from the
//!   most selective vertex (rarest label, then highest degree);
//! * candidates for a vertex with an already-matched neighbour are drawn from that
//!   neighbour's image adjacency list instead of the whole graph;
//! * label, degree and adjacency feasibility checks prune each extension.
//!
//! Enumeration can explode combinatorially (that is precisely why MNI/MI matter), so
//! the search takes an explicit [`IsoConfig::max_embeddings`] budget and reports
//! whether it completed.

use crate::{LabeledGraph, Pattern, VertexId};

/// An occurrence: `assignment[p]` is the data-graph image of pattern vertex `p`.
pub type Embedding = Vec<VertexId>;

/// Configuration for the embedding enumerator.
#[derive(Debug, Clone, Copy)]
pub struct IsoConfig {
    /// Stop after this many embeddings have been produced.
    pub max_embeddings: usize,
    /// Require induced embeddings (pattern *non*-edges must map to non-edges).
    /// The paper's occurrences are non-induced, so this defaults to `false`.
    pub induced: bool,
}

impl Default for IsoConfig {
    fn default() -> Self {
        IsoConfig { max_embeddings: 2_000_000, induced: false }
    }
}

impl IsoConfig {
    /// Config with a custom embedding budget.
    pub fn with_limit(max_embeddings: usize) -> Self {
        IsoConfig { max_embeddings, ..Default::default() }
    }
}

/// Result of an enumeration run.
#[derive(Debug, Clone)]
pub struct EnumerationResult {
    /// All embeddings found (up to the configured limit).
    pub embeddings: Vec<Embedding>,
    /// `false` if the search stopped early because the limit was hit.
    pub complete: bool,
}

impl EnumerationResult {
    /// Number of embeddings found.
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// `true` when no embedding was found.
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }
}

/// Search order: a permutation of pattern vertices such that (for connected patterns)
/// every vertex after the first has at least one earlier neighbour.
fn search_order(pattern: &Pattern, graph: &LabeledGraph) -> Vec<VertexId> {
    let n = pattern.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Selectivity: fewer data vertices with this label first, then higher degree.
    let mut label_count = std::collections::HashMap::new();
    for v in graph.vertices() {
        *label_count.entry(graph.label(v)).or_insert(0usize) += 1;
    }
    let selectivity = |v: VertexId| -> (usize, std::cmp::Reverse<usize>) {
        (*label_count.get(&pattern.label(v)).unwrap_or(&0), std::cmp::Reverse(pattern.degree(v)))
    };
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let start = pattern.vertices().min_by_key(|&v| selectivity(v)).expect("non-empty pattern");
    order.push(start);
    placed[start as usize] = true;
    while order.len() < n {
        // Prefer vertices adjacent to the already-ordered prefix.
        let next = pattern
            .vertices()
            .filter(|&v| !placed[v as usize])
            .filter(|&v| pattern.neighbors(v).iter().any(|&w| placed[w as usize]))
            .min_by_key(|&v| selectivity(v))
            .or_else(|| {
                // Disconnected pattern: fall back to any unplaced vertex.
                pattern.vertices().filter(|&v| !placed[v as usize]).min_by_key(|&v| selectivity(v))
            })
            .expect("some vertex unplaced");
        order.push(next);
        placed[next as usize] = true;
    }
    order
}

struct Search<'a> {
    pattern: &'a Pattern,
    graph: &'a LabeledGraph,
    order: Vec<VertexId>,
    /// For each position in `order`, the pattern neighbours that appear earlier.
    earlier_neighbors: Vec<Vec<VertexId>>,
    config: IsoConfig,
    assignment: Vec<Option<VertexId>>,
    used: Vec<bool>,
    out: Vec<Embedding>,
    truncated: bool,
}

impl<'a> Search<'a> {
    fn new(pattern: &'a Pattern, graph: &'a LabeledGraph, config: IsoConfig) -> Self {
        let order = search_order(pattern, graph);
        let mut position = vec![usize::MAX; pattern.num_vertices()];
        for (i, &v) in order.iter().enumerate() {
            position[v as usize] = i;
        }
        let earlier_neighbors = order
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                pattern.neighbors(v).iter().copied().filter(|&w| position[w as usize] < i).collect()
            })
            .collect();
        Search {
            pattern,
            graph,
            order,
            earlier_neighbors,
            config,
            assignment: vec![None; pattern.num_vertices()],
            used: vec![false; graph.num_vertices()],
            out: Vec::new(),
            truncated: false,
        }
    }

    fn feasible(&self, pv: VertexId, gv: VertexId, depth: usize) -> bool {
        if self.used[gv as usize] {
            return false;
        }
        if self.graph.label(gv) != self.pattern.label(pv) {
            return false;
        }
        if self.graph.degree(gv) < self.pattern.degree(pv) {
            return false;
        }
        // Every earlier-matched pattern neighbour must be adjacent in the data graph.
        for &pn in &self.earlier_neighbors[depth] {
            let gn = self.assignment[pn as usize].expect("earlier vertex assigned");
            if !self.graph.has_edge(gv, gn) {
                return false;
            }
        }
        if self.config.induced {
            // Earlier-matched pattern NON-neighbours must not be adjacent.
            for (p_other, assigned) in self.assignment.iter().enumerate() {
                if let Some(g_other) = assigned {
                    let p_other = p_other as VertexId;
                    if p_other != pv
                        && !self.pattern.has_edge(pv, p_other)
                        && self.graph.has_edge(gv, *g_other)
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn candidates(&self, pv: VertexId, depth: usize) -> Vec<VertexId> {
        if let Some(&pn) = self.earlier_neighbors[depth].first() {
            let gn = self.assignment[pn as usize].expect("assigned");
            self.graph.neighbors(gn).to_vec()
        } else {
            self.graph
                .vertices()
                .filter(|&gv| self.graph.label(gv) == self.pattern.label(pv))
                .collect()
        }
    }

    fn run(&mut self, depth: usize) {
        if self.truncated {
            return;
        }
        if depth == self.order.len() {
            let emb: Embedding =
                self.assignment.iter().map(|a| a.expect("complete assignment")).collect();
            self.out.push(emb);
            if self.out.len() >= self.config.max_embeddings {
                self.truncated = true;
            }
            return;
        }
        let pv = self.order[depth];
        for gv in self.candidates(pv, depth) {
            if self.feasible(pv, gv, depth) {
                self.assignment[pv as usize] = Some(gv);
                self.used[gv as usize] = true;
                self.run(depth + 1);
                self.assignment[pv as usize] = None;
                self.used[gv as usize] = false;
                if self.truncated {
                    return;
                }
            }
        }
    }
}

/// Enumerate all occurrences (subgraph isomorphisms) of `pattern` in `graph`.
pub fn enumerate_embeddings(
    pattern: &Pattern,
    graph: &LabeledGraph,
    config: IsoConfig,
) -> EnumerationResult {
    if pattern.num_vertices() == 0 {
        // The empty pattern has exactly one (empty) occurrence by convention.
        return EnumerationResult { embeddings: vec![Vec::new()], complete: true };
    }
    if pattern.num_vertices() > graph.num_vertices() {
        return EnumerationResult { embeddings: Vec::new(), complete: true };
    }
    let mut search = Search::new(pattern, graph, config);
    search.run(0);
    EnumerationResult { embeddings: search.out, complete: !search.truncated }
}

/// `true` if `pattern` has at least one occurrence in `graph`.
pub fn has_embedding(pattern: &Pattern, graph: &LabeledGraph) -> bool {
    let config = IsoConfig { max_embeddings: 1, ..Default::default() };
    !enumerate_embeddings(pattern, graph, config).is_empty()
}

/// `true` if the two graphs are isomorphic (Definition 2.1.5): same vertex count, same
/// edge count, and an induced embedding exists in both directions (one direction plus
/// the count equalities suffices).
pub fn are_isomorphic(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    if a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges() {
        return false;
    }
    if a.label_histogram() != b.label_histogram() {
        return false;
    }
    let config = IsoConfig { max_embeddings: 1, induced: false };
    // With equal vertex and edge counts, a (non-induced) edge-preserving bijection is
    // automatically edge-reflecting, hence an isomorphism.
    !enumerate_embeddings(a, b, config).is_empty()
}

/// Count occurrences without materialising them (still bounded by `config.max_embeddings`).
pub fn count_embeddings(pattern: &Pattern, graph: &LabeledGraph, config: IsoConfig) -> usize {
    enumerate_embeddings(pattern, graph, config).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use crate::Label;

    /// The Figure 2 data graph: a labeled triangle {1,2,3} plus pendant vertices.
    fn figure2_graph() -> LabeledGraph {
        // vertices 1..6 in the paper are 0..5 here; all share one label.
        LabeledGraph::from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 4), (2, 5), (1, 5)],
        )
    }

    #[test]
    fn triangle_has_six_occurrences_one_instance() {
        // Figure 2: the triangle pattern has 6 occurrences in the data graph (3! maps
        // onto the single triangle instance).
        let g = LabeledGraph::from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (2, 5)],
        );
        let p = patterns::triangle(Label(0), Label(0), Label(0));
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 6);
        assert!(res.complete);
    }

    #[test]
    fn single_edge_pattern_counts_directed_embeddings() {
        // An edge with two same-label endpoints has 2 occurrences per data edge.
        let g = LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let p = patterns::single_edge(Label(0), Label(0));
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn labels_filter_candidates() {
        let g = LabeledGraph::from_edges(&[1, 2, 1], &[(0, 1), (1, 2)]);
        let p = patterns::single_edge(Label(1), Label(2));
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 2); // (0,1) and (2,1)
        for emb in &res.embeddings {
            assert_eq!(g.label(emb[0]), Label(1));
            assert_eq!(g.label(emb[1]), Label(2));
        }
    }

    #[test]
    fn embedding_maps_edges_to_edges() {
        let g = figure2_graph();
        let p = patterns::path(&[Label(0), Label(0), Label(0)]);
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert!(!res.is_empty());
        for emb in &res.embeddings {
            for (u, v) in p.edges() {
                assert!(g.has_edge(emb[u as usize], emb[v as usize]));
            }
            // injectivity
            let mut sorted = emb.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), emb.len());
        }
    }

    #[test]
    fn limit_truncates_search() {
        let g = figure2_graph();
        let p = patterns::path(&[Label(0), Label(0)]);
        let res = enumerate_embeddings(&p, &g, IsoConfig::with_limit(3));
        assert_eq!(res.len(), 3);
        assert!(!res.complete);
    }

    #[test]
    fn induced_mode_excludes_chords() {
        // Path pattern a-b-c in a triangle: non-induced finds 6, induced finds 0
        // (because the chord a-c always exists).
        let g = LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p = patterns::path(&[Label(0), Label(0), Label(0)]);
        let open = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(open.len(), 6);
        let induced =
            enumerate_embeddings(&p, &g, IsoConfig { induced: true, ..Default::default() });
        assert_eq!(induced.len(), 0);
    }

    #[test]
    fn pattern_larger_than_graph_has_no_embeddings() {
        let g = LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let p = patterns::path(&[Label(0), Label(0), Label(0)]);
        assert!(enumerate_embeddings(&p, &g, IsoConfig::default()).is_empty());
        assert!(!has_embedding(&p, &g));
    }

    #[test]
    fn empty_pattern_has_one_occurrence() {
        let g = LabeledGraph::from_edges(&[0], &[]);
        let p = LabeledGraph::new();
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn isomorphism_check() {
        let a = patterns::cycle(&[Label(0), Label(1), Label(0), Label(1)]);
        // same cycle, listed starting elsewhere
        let b = patterns::cycle(&[Label(1), Label(0), Label(1), Label(0)]);
        assert!(are_isomorphic(&a, &b));
        let c = patterns::path(&[Label(0), Label(1), Label(0), Label(1)]);
        assert!(!are_isomorphic(&a, &c));
        let d = patterns::cycle(&[Label(0), Label(0), Label(1), Label(1)]);
        assert!(!are_isomorphic(&a, &d));
    }

    #[test]
    fn disconnected_pattern_is_supported() {
        // Two disjoint edges as pattern; data graph a path of 4 distinct-labelled vertices.
        let mut p = LabeledGraph::new();
        let a = p.add_vertex(Label(1));
        let b = p.add_vertex(Label(2));
        let c = p.add_vertex(Label(3));
        let d = p.add_vertex(Label(4));
        p.add_edge(a, b).unwrap();
        p.add_edge(c, d).unwrap();
        let g = LabeledGraph::from_edges(&[1, 2, 3, 4], &[(0, 1), (1, 2), (2, 3)]);
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn count_matches_enumerate() {
        let g = figure2_graph();
        let p = patterns::triangle(Label(0), Label(0), Label(0));
        let n = count_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(n, enumerate_embeddings(&p, &g, IsoConfig::default()).len());
    }
}
