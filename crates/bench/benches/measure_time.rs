//! E4 — support-measure computation time as a function of the number of occurrences.
//!
//! The paper's central efficiency claim is that MNI and MI are linear in the number of
//! occurrences while MVC/MIS are NP-hard (with polynomial LP relaxations in between).
//! The star-overlap workload scales the occurrence count while keeping the pattern
//! fixed, so these benches trace exactly that spectrum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffsm_bench::workloads;
use ffsm_core::measures::{MeasureConfig, MvcAlgorithm, SupportMeasures};
use std::hint::black_box;
use std::time::Duration;

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("measure_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for &occurrences in &[64usize, 256, 1024] {
        let (graph, pattern) = workloads::star_overlap_workload(occurrences);
        let occ = workloads::enumerate(&pattern, &graph, 2_000_000);
        let calc = SupportMeasures::new(occ, MeasureConfig::default());
        // Pre-build the cached hypergraph so every measure pays only its own cost.
        let _ = calc.hypergraph(Default::default());

        group.bench_with_input(BenchmarkId::new("mni", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(calc.mni()))
        });
        group.bench_with_input(BenchmarkId::new("mi_orbits", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(calc.mi()))
        });
        group.bench_with_input(BenchmarkId::new("mvc_exact", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(calc.mvc_with(MvcAlgorithm::Exact)))
        });
        group.bench_with_input(
            BenchmarkId::new("mvc_greedy_matching", occurrences),
            &occurrences,
            |b, _| b.iter(|| black_box(calc.mvc_with(MvcAlgorithm::GreedyMatching))),
        );
        group.bench_with_input(BenchmarkId::new("mies", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(calc.mies()))
        });
        group.bench_with_input(BenchmarkId::new("relaxed_mvc_lp", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(calc.relaxed_mvc()))
        });
        // MIS builds the quadratic overlap graph; keep it to the smaller sizes.
        if occurrences <= 256 {
            group.bench_with_input(BenchmarkId::new("mis_overlap_graph", occurrences), &occurrences, |b, _| {
                b.iter(|| black_box(calc.mis()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
