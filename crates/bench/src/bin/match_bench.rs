//! `match_bench` — the `match_scaling` workload behind `BENCH_match.json`.
//!
//! Two sweeps over the subgraph-matching engines:
//!
//! * **decoy sweep** — the layered decoy-cycle workload (`workloads::
//!   decoy_cycle_workload`), where the naive oracle walks `Θ(n⁴)` doomed partial
//!   paths and the candidate-space engine prunes the whole block before searching.
//!   This is the headline naive-vs-indexed comparison; the largest size asserts the
//!   ≥ 5x speedup the subsystem promises.
//! * **dense sweep** — the embedding-heavy disjoint-clique workload
//!   (`workloads::dense_triangle_workload`), timing the indexed engine at 1, 2, 4
//!   and 8 worker threads to chart the deterministic root-partition parallelism.
//!
//! Every timed run is cross-checked against the naive oracle's embedding count, so
//! the bench doubles as an integration test of the engines' equivalence.
//!
//! Usage: `match_bench [--max-layer N] [--dense-copies N] [--out PATH]`
//! (defaults: layer 64, 2000 copies, `BENCH_match.json` in the working directory).
//!
//! The JSON report is a flat list of entries (`workload`, `size`, `embeddings`,
//! `naive_us`, `space_us`, `indexed_us`, `t2_us`, `t4_us`, `t8_us`, `speedup`) consumed by the
//! CI artifact upload; future PRs extend the trajectory rather than reformatting it.

use ffsm_bench::report::{json_string, Table};
use ffsm_bench::{flag_value, format_duration, timed, workloads};
use ffsm_graph::isomorphism::{enumerate_embeddings, EnumeratorBackend, IsoConfig};
use ffsm_graph::{LabeledGraph, Pattern};
use ffsm_match::{GraphIndex, Matcher};
use std::time::Duration;

struct Entry {
    workload: &'static str,
    size: usize,
    embeddings: usize,
    naive: Duration,
    /// Candidate-space + matching-order build (the per-pattern setup cost).
    space: Duration,
    /// Sequential enumeration over the prepared space.
    indexed: Duration,
    threaded: [Duration; 3], // 2, 4, 8 workers, enumeration only
}

impl Entry {
    /// Naive time over the *total* per-pattern indexed cost (setup + search).
    fn speedup(&self) -> f64 {
        self.naive.as_secs_f64() / (self.space + self.indexed).as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"workload\": {}, \"size\": {}, \"embeddings\": {}, \"naive_us\": {}, \
             \"space_us\": {}, \"indexed_us\": {}, \"t2_us\": {}, \"t4_us\": {}, \
             \"t8_us\": {}, \"speedup\": {:.2}}}",
            json_string(self.workload),
            self.size,
            self.embeddings,
            self.naive.as_micros(),
            self.space.as_micros(),
            self.indexed.as_micros(),
            self.threaded[0].as_micros(),
            self.threaded[1].as_micros(),
            self.threaded[2].as_micros(),
            self.speedup()
        )
    }
}

/// Run one workload through both engines and every thread count, cross-checking all
/// embedding counts against the naive oracle.
fn measure(workload: &'static str, size: usize, graph: &LabeledGraph, pattern: &Pattern) -> Entry {
    let naive_config = IsoConfig::default().with_backend(EnumeratorBackend::Naive);
    let (naive_result, naive) = timed(|| enumerate_embeddings(pattern, graph, naive_config));
    assert!(naive_result.complete, "naive run must finish ({workload}, size {size})");

    // The per-graph index is the once-per-session cost; report it out of band and
    // time the per-pattern work (candidate space + search) like the miner sees it.
    let (index, index_time) = timed(|| GraphIndex::build(graph));
    eprintln!("index build at {workload}/{size}: {}", format_duration(index_time));

    let (matcher, space) = timed(|| Matcher::new(pattern, graph, &index));
    let run_indexed = |threads: usize| -> (usize, Duration) {
        let config = IsoConfig { threads, ..IsoConfig::default() };
        let (result, elapsed) = timed(|| matcher.enumerate(config));
        assert_eq!(
            result.len(),
            naive_result.len(),
            "candidate-space engine diverged from the oracle ({workload}, size {size}, \
             {threads} threads)"
        );
        (result.len(), elapsed)
    };
    let (embeddings, indexed) = run_indexed(1);
    let threaded = [run_indexed(2).1, run_indexed(4).1, run_indexed(8).1];
    Entry { workload, size, embeddings, naive, space, indexed, threaded }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_layer: usize = flag_value(&args, "--max-layer")
        .map(|v| v.parse().expect("--max-layer expects a number"))
        .unwrap_or(64);
    let dense_copies: usize = flag_value(&args, "--dense-copies")
        .map(|v| v.parse().expect("--dense-copies expects a number"))
        .unwrap_or(2000);
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_match.json").to_string();

    let mut entries: Vec<Entry> = Vec::new();
    let mut table = Table::new(
        "match_scaling: naive vs candidate-space embedding enumeration",
        &[
            "workload",
            "size",
            "embeddings",
            "naive",
            "space",
            "indexed",
            "x2",
            "x4",
            "x8",
            "speedup",
        ],
    );
    for layer in workloads::match_scaling_sizes(max_layer) {
        let (graph, pattern) = workloads::decoy_cycle_workload(layer, 8);
        entries.push(measure("decoy_cycle", layer, &graph, &pattern));
    }
    for copies in [dense_copies / 4, dense_copies] {
        let (graph, pattern) = workloads::dense_triangle_workload(copies.max(1));
        entries.push(measure("dense_triangle", copies.max(1), &graph, &pattern));
    }
    for e in &entries {
        table.add_row(vec![
            e.workload.to_string(),
            e.size.to_string(),
            e.embeddings.to_string(),
            format_duration(e.naive),
            format_duration(e.space),
            format_duration(e.indexed),
            format_duration(e.threaded[0]),
            format_duration(e.threaded[1]),
            format_duration(e.threaded[2]),
            format!("{:.2}x", e.speedup()),
        ]);
    }
    table.print();

    let body: Vec<String> = entries.iter().map(|e| format!("    {}", e.to_json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"match_scaling\",\n  \"workloads\": [\"decoy_cycle(4-cycle)\", \
         \"dense_triangle\"],\n  \"entries\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write perf report");
    println!("wrote {out_path} ({} entries)", entries.len());

    // Acceptance gate: on the largest decoy workload, the candidate-space engine
    // must beat the naive oracle by at least 5x.
    let largest = entries
        .iter()
        .filter(|e| e.workload == "decoy_cycle")
        .max_by_key(|e| e.size)
        .expect("decoy sweep ran");
    assert!(
        largest.speedup() >= 5.0,
        "candidate-space engine only {:.2}x faster than naive on the largest decoy workload \
         ({:?} vs {:?} at layer size {})",
        largest.speedup(),
        largest.space + largest.indexed,
        largest.naive,
        largest.size
    );
}
