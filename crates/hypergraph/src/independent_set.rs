//! Maximum independent sets in ordinary graphs.
//!
//! The overlap-graph-based MIS support measure of Vanetik et al. (Definition 2.2.7)
//! needs a maximum independent vertex set of the *overlap graph* — a plain graph
//! whose vertices are occurrences/instances.  This module provides a small adjacency
//! structure for such graphs plus exact and greedy solvers, so the paper's baseline
//! measure can be computed and compared against the hypergraph-native MIES.

use crate::{ExactResult, SearchBudget};

/// A minimal undirected graph over vertices `0..n`, stored as adjacency lists.
/// Used for overlap graphs (whose vertices are hyperedges of an occurrence
/// hypergraph), not for labeled data graphs.
#[derive(Debug, Clone)]
pub struct SimpleGraph {
    adj: Vec<Vec<usize>>,
}

impl SimpleGraph {
    /// Create a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        SimpleGraph { adj: vec![Vec::new(); n] }
    }

    /// Build from adjacency lists (as produced by
    /// [`Hypergraph::overlap_adjacency`](crate::Hypergraph::overlap_adjacency)).
    pub fn from_adjacency(adj: Vec<Vec<usize>>) -> Self {
        SimpleGraph { adj }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Insert the undirected edge `{u, v}` (no-op if it exists).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.adj.len() && v < self.adj.len() && u != v, "invalid edge {u}-{v}");
        if !self.adj[u].contains(&v) {
            self.adj[u].push(v);
            self.adj[v].push(u);
        }
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }
}

struct MisSearch<'a> {
    g: &'a SimpleGraph,
    best: Vec<usize>,
    best_size: usize,
    nodes: usize,
    budget: usize,
    optimal: bool,
}

impl<'a> MisSearch<'a> {
    /// Branch on the highest-degree remaining vertex: either exclude it, or include it
    /// and exclude its neighbourhood.
    fn search(&mut self, chosen: &mut Vec<usize>, alive: &mut Vec<bool>, alive_count: usize) {
        self.nodes += 1;
        if self.nodes > self.budget {
            self.optimal = false;
            return;
        }
        if chosen.len() + alive_count <= self.best_size {
            return;
        }
        // Find the highest-degree alive vertex (degree counted among alive vertices).
        let mut pick = None;
        let mut pick_degree = 0usize;
        for v in 0..self.g.num_vertices() {
            if !alive[v] {
                continue;
            }
            let d = self.g.neighbors(v).iter().filter(|&&w| alive[w]).count();
            if pick.is_none() || d > pick_degree {
                pick = Some(v);
                pick_degree = d;
            }
        }
        let Some(v) = pick else {
            // No vertices left: record the solution.
            if chosen.len() > self.best_size {
                self.best_size = chosen.len();
                self.best = chosen.clone();
            }
            return;
        };
        if pick_degree == 0 {
            // All remaining vertices are isolated: take them all.
            let isolated: Vec<usize> = (0..self.g.num_vertices()).filter(|&w| alive[w]).collect();
            if chosen.len() + isolated.len() > self.best_size {
                self.best_size = chosen.len() + isolated.len();
                self.best = chosen.iter().copied().chain(isolated).collect();
            }
            return;
        }
        // Branch 1: include v.
        let removed: Vec<usize> = std::iter::once(v)
            .chain(self.g.neighbors(v).iter().copied())
            .filter(|&w| alive[w])
            .collect();
        for &w in &removed {
            alive[w] = false;
        }
        chosen.push(v);
        self.search(chosen, alive, alive_count - removed.len());
        chosen.pop();
        for &w in &removed {
            alive[w] = true;
        }
        // Branch 2: exclude v.
        alive[v] = false;
        self.search(chosen, alive, alive_count - 1);
        alive[v] = true;
    }
}

/// Exact maximum independent set of `g` via branch and bound.
pub fn exact_max_independent_set(g: &SimpleGraph, budget: SearchBudget) -> ExactResult {
    let n = g.num_vertices();
    if n == 0 {
        return ExactResult { value: 0, witness: Vec::new(), optimal: true };
    }
    let seed = greedy_independent_set(g);
    let mut search = MisSearch {
        g,
        best_size: seed.len(),
        best: seed,
        nodes: 0,
        budget: budget.0,
        optimal: true,
    };
    let mut alive = vec![true; n];
    search.search(&mut Vec::new(), &mut alive, n);
    let mut witness = search.best;
    witness.sort_unstable();
    ExactResult { value: search.best_size, witness, optimal: search.optimal }
}

/// Greedy independent set: repeatedly take the minimum-degree remaining vertex and
/// discard its neighbours.
pub fn greedy_independent_set(g: &SimpleGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut alive = vec![true; n];
    let mut chosen = Vec::new();
    loop {
        let mut pick = None;
        let mut pick_degree = usize::MAX;
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            let d = g.neighbors(v).iter().filter(|&&w| alive[w]).count();
            if d < pick_degree {
                pick = Some(v);
                pick_degree = d;
            }
        }
        let Some(v) = pick else { break };
        chosen.push(v);
        alive[v] = false;
        for &w in g.neighbors(v) {
            alive[w] = false;
        }
    }
    chosen.sort_unstable();
    chosen
}

/// `true` if `set` is an independent set of `g`.
pub fn is_independent_set(g: &SimpleGraph, set: &[usize]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if g.neighbors(u).contains(&v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> SimpleGraph {
        let mut g = SimpleGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn four_cycle_mis_is_two() {
        let g = cycle(4);
        let res = exact_max_independent_set(&g, SearchBudget::default());
        assert!(res.optimal);
        assert_eq!(res.value, 2);
        assert!(is_independent_set(&g, &res.witness));
    }

    #[test]
    fn five_cycle_mis_is_two() {
        let g = cycle(5);
        assert_eq!(exact_max_independent_set(&g, SearchBudget::default()).value, 2);
    }

    #[test]
    fn complete_graph_mis_is_one() {
        let mut g = SimpleGraph::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(g.num_edges(), 10);
        assert_eq!(exact_max_independent_set(&g, SearchBudget::default()).value, 1);
    }

    #[test]
    fn empty_graph_takes_everything() {
        let g = SimpleGraph::new(6);
        let res = exact_max_independent_set(&g, SearchBudget::default());
        assert_eq!(res.value, 6);
        assert_eq!(res.witness, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(greedy_independent_set(&g).len(), 6);
    }

    #[test]
    fn zero_vertices() {
        let g = SimpleGraph::new(0);
        assert_eq!(exact_max_independent_set(&g, SearchBudget::default()).value, 0);
    }

    #[test]
    fn greedy_is_valid_and_never_better_than_exact() {
        let g = cycle(9);
        let greedy = greedy_independent_set(&g);
        assert!(is_independent_set(&g, &greedy));
        let exact = exact_max_independent_set(&g, SearchBudget::default());
        assert_eq!(exact.value, 4);
        assert!(greedy.len() <= exact.value);
    }

    #[test]
    fn duplicate_add_edge_is_idempotent() {
        let mut g = SimpleGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn random_graphs_greedy_leq_exact() {
        let mut seed = 5u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        for trial in 0..8 {
            let n = 12 + trial;
            let mut g = SimpleGraph::new(n);
            for _ in 0..(2 * n) {
                let u = next() % n;
                let v = next() % n;
                if u != v {
                    g.add_edge(u, v);
                }
            }
            let exact = exact_max_independent_set(&g, SearchBudget::default());
            assert!(exact.optimal);
            assert!(is_independent_set(&g, &exact.witness));
            let greedy = greedy_independent_set(&g);
            assert!(is_independent_set(&g, &greedy));
            assert!(greedy.len() <= exact.value);
        }
    }
}
