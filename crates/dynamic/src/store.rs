//! [`DynamicGraph`] — the versioned store of epoch snapshots.
//!
//! ## Epoch / snapshot semantics
//!
//! The store is a linear history of **epochs** `0, 1, 2, …`.  Epoch 0 is the
//! initial graph; every [`DynamicGraph::apply`] validates one update batch and,
//! on success, appends exactly one new epoch.  An [`EpochSnapshot`] is
//! immutable: its [`PreparedGraph`] never changes after creation (the usual
//! prepare-once contract), so handles can be shared freely with concurrent
//! readers while newer epochs are created — a reader keeps mining the epoch it
//! started on.
//!
//! A failed batch is atomic: the store is left exactly as it was, because the
//! batch is applied to a scratch copy inside
//! [`PreparedGraph::apply_updates`] before anything is committed.
//!
//! Snapshots structurally share untouched state with their parent epoch (label
//! statistics `Arc`-shared for pure-edge deltas, matching index patched over
//! the dirty region rather than rebuilt); the store itself only retains the
//! history you ask it to keep ([`DynamicGraph::retain_recent`]).

use ffsm_core::FfsmError;
use ffsm_graph::{GraphDelta, GraphUpdate, LabeledGraph};
use ffsm_miner::PreparedGraph;

/// One immutable graph epoch: the prepared graph plus the delta that created it.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    epoch: usize,
    prepared: PreparedGraph,
    /// The dirty region of the batch that produced this epoch (`None` for the
    /// initial epoch, which has no parent).
    delta: Option<GraphDelta>,
}

impl EpochSnapshot {
    /// The epoch number (0 = the initial graph).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The immutable prepared graph of this epoch.
    pub fn prepared(&self) -> &PreparedGraph {
        &self.prepared
    }

    /// The delta from the parent epoch, `None` for epoch 0.
    pub fn delta(&self) -> Option<&GraphDelta> {
        self.delta.as_ref()
    }
}

/// A versioned dynamic graph: apply update batches, get immutable epoch
/// snapshots.  See the [module docs](self).
#[derive(Debug)]
pub struct DynamicGraph {
    /// Retained snapshots, ascending by epoch; the last entry is current.
    /// `retain_recent` may drop a prefix, so index ≠ epoch in general.
    epochs: Vec<EpochSnapshot>,
}

impl DynamicGraph {
    /// Open a store at epoch 0 with the given initial graph.
    pub fn new(graph: LabeledGraph) -> Self {
        Self::from_prepared(PreparedGraph::new(graph))
    }

    /// Open a store at epoch 0 over an already-prepared graph (sharing its
    /// artifacts — a built index is inherited by later epochs via patching).
    pub fn from_prepared(prepared: PreparedGraph) -> Self {
        DynamicGraph { epochs: vec![EpochSnapshot { epoch: 0, prepared, delta: None }] }
    }

    /// The current epoch number.
    pub fn epoch(&self) -> usize {
        self.current().epoch
    }

    /// The current (newest) snapshot.
    pub fn current(&self) -> &EpochSnapshot {
        self.epochs.last().expect("store always has a current epoch")
    }

    /// The retained snapshot of `epoch`, if it has not been pruned.
    pub fn snapshot(&self, epoch: usize) -> Option<&EpochSnapshot> {
        // Epochs are ascending and dense within the retained suffix.
        let first = self.epochs.first()?.epoch;
        epoch.checked_sub(first).and_then(|i| self.epochs.get(i))
    }

    /// Number of retained snapshots.
    pub fn retained(&self) -> usize {
        self.epochs.len()
    }

    /// The `(oldest, newest)` epoch numbers still retained — what a serving
    /// registry reports as the epoch-cache span (snapshots inside it answer
    /// `snapshot()` without recomputation; older epochs have been pruned).
    pub fn retained_range(&self) -> (usize, usize) {
        let first = self.epochs.first().expect("store always has a current epoch").epoch;
        (first, self.current().epoch)
    }

    /// Validate and apply one update batch, committing a new epoch on success
    /// and leaving the store untouched on failure.
    ///
    /// # Errors
    ///
    /// [`FfsmError::Update`] naming the offending update and its batch index
    /// (unknown vertex, self loop, …).
    pub fn apply(&mut self, updates: &[GraphUpdate]) -> Result<&EpochSnapshot, FfsmError> {
        let (prepared, delta) = self.current().prepared.apply_updates(updates)?;
        let epoch = self.current().epoch + 1;
        self.epochs.push(EpochSnapshot { epoch, prepared, delta: Some(delta) });
        Ok(self.current())
    }

    /// Drop all but the newest `keep` snapshots (the current epoch is always
    /// retained).  Outstanding clones of dropped snapshots stay valid — pruning
    /// only bounds what the store itself keeps alive.
    pub fn retain_recent(&mut self, keep: usize) {
        let keep = keep.max(1);
        if self.epochs.len() > keep {
            self.epochs.drain(..self.epochs.len() - keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::Label;

    fn path4() -> LabeledGraph {
        LabeledGraph::from_edges(&[0, 1, 1, 0], &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn epochs_advance_per_batch() {
        let mut store = DynamicGraph::new(path4());
        assert_eq!(store.epoch(), 0);
        assert!(store.current().delta().is_none());
        store.apply(&[GraphUpdate::AddEdge(0, 3)]).unwrap();
        let epoch = store.apply(&[GraphUpdate::Relabel(1, Label(7))]).unwrap();
        assert_eq!(epoch.epoch(), 2);
        assert_eq!(epoch.delta().unwrap().relabelled, 1);
        assert_eq!(store.retained(), 3);
        assert_eq!(store.snapshot(1).unwrap().prepared().graph().num_edges(), 4);
    }

    #[test]
    fn failed_batches_are_atomic() {
        let mut store = DynamicGraph::new(path4());
        let err =
            store.apply(&[GraphUpdate::AddEdge(0, 2), GraphUpdate::RemoveVertex(99)]).unwrap_err();
        assert!(matches!(err, FfsmError::Update(_)));
        assert_eq!(store.epoch(), 0, "nothing committed");
        assert!(!store.current().prepared().graph().has_edge(0, 2));
    }

    #[test]
    fn old_snapshots_survive_new_epochs() {
        let mut store = DynamicGraph::new(path4());
        let epoch0 = store.current().clone();
        store.apply(&[GraphUpdate::RemoveVertex(0)]).unwrap();
        assert_eq!(epoch0.prepared().graph().num_vertices(), 4, "reader view intact");
        assert_eq!(store.current().prepared().graph().num_vertices(), 3);
    }

    #[test]
    fn retention_keeps_the_newest_suffix() {
        let mut store = DynamicGraph::new(path4());
        for _ in 0..5 {
            store.apply(&[GraphUpdate::AddVertex(Label(9))]).unwrap();
        }
        store.retain_recent(2);
        assert_eq!(store.retained(), 2);
        assert_eq!(store.epoch(), 5);
        assert_eq!(store.retained_range(), (4, 5));
        assert!(store.snapshot(3).is_none(), "pruned");
        assert_eq!(store.snapshot(4).unwrap().epoch(), 4);
        assert_eq!(store.snapshot(5).unwrap().epoch(), 5);
        store.retain_recent(0);
        assert_eq!(store.retained(), 1, "current epoch always survives");
    }

    #[test]
    fn inherited_index_is_patched_not_rebuilt() {
        let mut store = DynamicGraph::new(path4());
        let _ = store.current().prepared().index();
        let epoch = store.apply(&[GraphUpdate::AddEdge(1, 3)]).unwrap();
        assert_eq!(epoch.prepared().index_build_count(), 0);
        let _ = epoch.prepared().index();
        assert_eq!(epoch.prepared().index_build_count(), 0, "patched index served");
    }
}
