//! Substrate micro-benchmarks: subgraph-isomorphism enumeration, canonical codes,
//! hypergraph vertex cover / matching, and the simplex LP solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffsm_graph::canonical::canonical_code;
use ffsm_graph::isomorphism::{enumerate_embeddings, IsoConfig};
use ffsm_graph::{generators, patterns, Label};
use ffsm_hypergraph::matching::exact_independent_edge_set;
use ffsm_hypergraph::vertex_cover::exact_vertex_cover;
use ffsm_hypergraph::{Hypergraph, SearchBudget};
use ffsm_lp::{covering_lp, packing_lp};
use std::hint::black_box;
use std::time::Duration;

fn random_uniform_hypergraph(vertices: usize, edges: usize, rank: usize, seed: u64) -> Hypergraph {
    let mut h = Hypergraph::new(vertices);
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for _ in 0..edges {
        let mut e: Vec<usize> = (0..rank).map(|_| next() % vertices).collect();
        e.sort_unstable();
        e.dedup();
        h.add_edge(e).unwrap();
    }
    h
}

fn bench_isomorphism(c: &mut Criterion) {
    let mut group = c.benchmark_group("subgraph_isomorphism");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    let graph = generators::barabasi_albert(400, 3, 3, 9);
    for (name, pattern) in [
        ("edge", patterns::single_edge(Label(0), Label(1))),
        ("path3", patterns::uniform_path(3, Label(0))),
        ("triangle", patterns::uniform_clique(3, Label(0))),
        ("star3", patterns::uniform_star(3, Label(1), Label(0))),
    ] {
        group.bench_function(BenchmarkId::new("enumerate", name), |b| {
            b.iter(|| {
                black_box(enumerate_embeddings(&pattern, &graph, IsoConfig::with_limit(200_000)).len())
            })
        });
    }
    group.finish();
}

fn bench_canonical_codes(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonical_code");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));
    for (name, pattern) in [
        ("path5", patterns::uniform_path(5, Label(0))),
        ("clique5", patterns::uniform_clique(5, Label(0))),
        ("cycle6", patterns::cycle(&[Label(0); 6])),
    ] {
        group.bench_function(BenchmarkId::new("canon", name), |b| {
            b.iter(|| black_box(canonical_code(&pattern)))
        });
    }
    group.finish();
}

fn bench_hypergraph_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypergraph_solvers");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for &edges in &[50usize, 200] {
        let h = random_uniform_hypergraph(edges / 2, edges, 3, 13);
        group.bench_with_input(BenchmarkId::new("exact_vertex_cover", edges), &edges, |b, _| {
            b.iter(|| black_box(exact_vertex_cover(&h, SearchBudget::default()).value))
        });
        group.bench_with_input(BenchmarkId::new("exact_matching", edges), &edges, |b, _| {
            b.iter(|| black_box(exact_independent_edge_set(&h, SearchBudget::default()).value))
        });
    }
    group.finish();
}

fn bench_lp_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for &edges in &[100usize, 400] {
        let h = random_uniform_hypergraph(edges / 2, edges, 3, 29);
        let sets: Vec<Vec<usize>> = h.edges().map(|(_, e)| e.to_vec()).collect();
        group.bench_with_input(BenchmarkId::new("covering_lp", edges), &edges, |b, _| {
            b.iter(|| black_box(covering_lp(h.num_vertices(), &sets).solve().unwrap().objective))
        });
        group.bench_with_input(BenchmarkId::new("packing_lp", edges), &edges, |b, _| {
            b.iter(|| {
                black_box(
                    packing_lp(sets.len(), &sets, h.num_vertices())
                        .solve()
                        .unwrap()
                        .objective,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_isomorphism,
    bench_canonical_codes,
    bench_hypergraph_solvers,
    bench_lp_solver
);
criterion_main!(benches);
