//! Maximum independent edge sets (hypergraph matchings / set packing).
//!
//! The MIES support measure (Definition 4.2.1) is the maximum number of pairwise
//! disjoint edges of the occurrence/instance hypergraph; Theorem 4.1 shows it equals
//! the overlap-graph MIS measure.  Set packing is NP-hard, so as with vertex covers
//! we provide an exact branch-and-bound plus a greedy heuristic.

use crate::hypergraph::intersection_empty;
use crate::{ExactResult, Hypergraph, SearchBudget};

struct PackingSearch<'a> {
    h: &'a Hypergraph,
    /// For each edge, the (sorted) list of later edges it conflicts with.
    conflicts: Vec<Vec<usize>>,
    best: Vec<usize>,
    best_size: usize,
    nodes: usize,
    budget: usize,
    optimal: bool,
}

impl<'a> PackingSearch<'a> {
    fn search(&mut self, next: usize, chosen: &mut Vec<usize>, blocked: &mut Vec<u32>) {
        self.nodes += 1;
        if self.nodes > self.budget {
            self.optimal = false;
            return;
        }
        let m = self.h.num_edges();
        // Upper bound: everything not yet blocked from `next` onwards could be added.
        let available = (next..m).filter(|&e| blocked[e] == 0).count();
        if chosen.len() + available <= self.best_size {
            return;
        }
        if next == m {
            if chosen.len() > self.best_size {
                self.best_size = chosen.len();
                self.best = chosen.clone();
            }
            return;
        }
        if blocked[next] == 0 {
            // Branch 1: take edge `next`.
            chosen.push(next);
            for &c in &self.conflicts[next] {
                blocked[c] += 1;
            }
            self.search(next + 1, chosen, blocked);
            for &c in &self.conflicts[next] {
                blocked[c] -= 1;
            }
            chosen.pop();
        }
        // Branch 2: skip edge `next`.
        self.search(next + 1, chosen, blocked);
        if chosen.len() > self.best_size {
            self.best_size = chosen.len();
            self.best = chosen.clone();
        }
    }
}

/// Exact maximum independent edge set (set packing) via branch and bound.
pub fn exact_independent_edge_set(h: &Hypergraph, budget: SearchBudget) -> ExactResult {
    let m = h.num_edges();
    if m == 0 {
        return ExactResult { value: 0, witness: Vec::new(), optimal: true };
    }
    let mut conflicts = vec![Vec::new(); m];
    for i in 0..m {
        for j in (i + 1)..m {
            if !intersection_empty(h.edge(i), h.edge(j)) {
                conflicts[i].push(j);
                conflicts[j].push(i);
            }
        }
    }
    let seed = greedy_independent_edge_set(h);
    let mut search = PackingSearch {
        h,
        conflicts,
        best_size: seed.len(),
        best: seed,
        nodes: 0,
        budget: budget.0,
        optimal: true,
    };
    let mut blocked = vec![0u32; m];
    search.search(0, &mut Vec::new(), &mut blocked);
    ExactResult { value: search.best_size, witness: search.best, optimal: search.optimal }
}

/// Greedy maximal independent edge set: scan edges in order of increasing size and
/// take every edge disjoint from the ones already taken.  This is a maximal matching,
/// so its size is at least `MIES / k` for k-uniform hypergraphs and also lower-bounds
/// the minimum vertex cover.
pub fn greedy_independent_edge_set(h: &Hypergraph) -> Vec<usize> {
    let mut order: Vec<usize> = (0..h.num_edges()).collect();
    order.sort_by_key(|&e| h.edge(e).len());
    let mut used_vertices = vec![false; h.num_vertices()];
    let mut chosen = Vec::new();
    for e in order {
        let verts = h.edge(e);
        if verts.iter().any(|&v| used_vertices[v]) {
            continue;
        }
        for &v in verts {
            used_vertices[v] = true;
        }
        chosen.push(e);
    }
    chosen.sort_unstable();
    chosen
}

/// `true` if the given edges are pairwise disjoint.
pub fn is_independent_edge_set(h: &Hypergraph, edges: &[usize]) -> bool {
    for (i, &a) in edges.iter().enumerate() {
        for &b in &edges[i + 1..] {
            if !intersection_empty(h.edge(a), h.edge(b)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure8_hypergraph() -> Hypergraph {
        // Instance hypergraph of Figure 8: a 4-cycle's edges {1,2},{2,3},{3,4},{4,1}
        // (paper numbering 1..4 -> 0..3 here).
        let mut h = Hypergraph::new(4);
        for e in [[0, 1], [1, 2], [2, 3], [3, 0]] {
            h.add_edge(e.to_vec()).unwrap();
        }
        h
    }

    #[test]
    fn figure8_mies_is_two() {
        let h = figure8_hypergraph();
        let res = exact_independent_edge_set(&h, SearchBudget::default());
        assert!(res.optimal);
        assert_eq!(res.value, 2);
        assert!(is_independent_edge_set(&h, &res.witness));
    }

    #[test]
    fn greedy_is_valid_and_at_most_exact() {
        let h = figure8_hypergraph();
        let greedy = greedy_independent_edge_set(&h);
        assert!(is_independent_edge_set(&h, &greedy));
        let exact = exact_independent_edge_set(&h, SearchBudget::default());
        assert!(greedy.len() <= exact.value);
        assert!(!greedy.is_empty());
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(3);
        assert_eq!(exact_independent_edge_set(&h, SearchBudget::default()).value, 0);
        assert!(greedy_independent_edge_set(&h).is_empty());
        assert!(is_independent_edge_set(&h, &[]));
    }

    #[test]
    fn all_edges_share_a_vertex() {
        let mut h = Hypergraph::new(5);
        for v in 1..5 {
            h.add_edge(vec![0, v]).unwrap();
        }
        let res = exact_independent_edge_set(&h, SearchBudget::default());
        assert_eq!(res.value, 1);
    }

    #[test]
    fn disjoint_edges_all_chosen() {
        let mut h = Hypergraph::new(9);
        h.add_edge(vec![0, 1, 2]).unwrap();
        h.add_edge(vec![3, 4, 5]).unwrap();
        h.add_edge(vec![6, 7, 8]).unwrap();
        let res = exact_independent_edge_set(&h, SearchBudget::default());
        assert_eq!(res.value, 3);
        assert_eq!(res.witness, vec![0, 1, 2]);
    }

    #[test]
    fn packing_never_exceeds_cover() {
        // Weak duality: |matching| <= |vertex cover| (Theorem 4.5).
        let mut seed = 99u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        for trial in 0..10 {
            let n = 10 + trial;
            let mut h = Hypergraph::new(n);
            for _ in 0..(3 * n / 2) {
                let mut e = vec![next() % n, next() % n, next() % n];
                e.sort_unstable();
                e.dedup();
                h.add_edge(e).unwrap();
            }
            let mies = exact_independent_edge_set(&h, SearchBudget::default());
            let mvc = crate::vertex_cover::exact_vertex_cover(&h, SearchBudget::default());
            assert!(mies.optimal && mvc.optimal);
            assert!(
                mies.value <= mvc.value,
                "packing {} > cover {} on trial {trial}",
                mies.value,
                mvc.value
            );
        }
    }

    #[test]
    fn tiny_budget_still_valid() {
        let h = figure8_hypergraph();
        let res = exact_independent_edge_set(&h, SearchBudget(1));
        assert!(is_independent_edge_set(&h, &res.witness));
        assert!(res.value >= 1);
    }
}
