//! Top-k mining, parallel mining and result condensation on a chemical-style graph.
//!
//! This is the "downstream application" view of the paper: the same miner run with an
//! over-estimating measure (MNI) versus a conservative one (MVC) reports different
//! frequent-pattern sets; top-k mining removes the need to guess a threshold; and the
//! maximal/closed condensations summarise the output.
//!
//! Run with: `cargo run --release --example topk_mining`

use ffsm::core::MeasureKind;
use ffsm::graph::datasets;
use ffsm::miner::postprocess::{closed_patterns, maximal_patterns};
use ffsm::miner::{mine_parallel, mine_top_k, Miner, MinerConfig, ParallelMinerConfig, TopKConfig};

fn main() {
    let dataset = datasets::chemical_like(60, 23);
    println!("dataset `{}`: {}\n", dataset.name, dataset.description);

    // 1. Threshold mining under two measures.
    let tau = 12.0;
    for measure in [MeasureKind::Mni, MeasureKind::Mvc] {
        let config = MinerConfig {
            min_support: tau,
            measure,
            max_pattern_edges: 3,
            ..Default::default()
        };
        let result = Miner::new(&dataset.graph, config).mine();
        println!(
            "threshold mining, tau = {tau}, measure = {:<4}: {:>3} frequent patterns ({} maximal, {} closed), {} candidates evaluated",
            measure.name(),
            result.len(),
            maximal_patterns(&result).len(),
            closed_patterns(&result).len(),
            result.stats.candidates_evaluated
        );
    }

    // 2. The same threshold with the level-parallel miner (identical results).
    let parallel = mine_parallel(
        &dataset.graph,
        &ParallelMinerConfig { min_support: tau, max_pattern_edges: 3, ..Default::default() },
    );
    println!(
        "parallel mining ({} threads):             {:>3} frequent patterns in {:?}",
        ParallelMinerConfig::default().num_threads,
        parallel.len(),
        parallel.stats.elapsed
    );

    // 3. Top-k mining: no threshold guessing.
    let topk = mine_top_k(
        &dataset.graph,
        &TopKConfig { k: 8, min_support: 2.0, max_pattern_edges: 3, ..Default::default() },
    );
    println!("\ntop-{} patterns by MNI support:", 8);
    for (rank, p) in topk.patterns.iter().enumerate() {
        println!(
            "  #{:<2} support {:>6.1}  ({} vertices, {} edges, {} occurrences)",
            rank + 1,
            p.support,
            p.pattern.num_vertices(),
            p.pattern.num_edges(),
            p.num_occurrences
        );
    }
    println!(
        "final rising threshold: {:.1} (candidates evaluated: {})",
        topk.final_threshold, topk.stats.candidates_evaluated
    );
}
