//! Overlap notions between occurrences: simple, harmful and structural overlap
//! (Definitions 2.2.3, 4.5.1 and 4.5.2), and overlap-graph construction under each.
//!
//! The paper proposes *structural overlap* as a topology-aware alternative to the
//! harmful overlap of Fiedler & Borgelt: both imply simple (vertex) overlap, neither
//! implies the other, and using a weaker notion produces a sparser overlap graph —
//! hence larger (less conservative) MIS-style supports.  Experiment E8 quantifies
//! exactly that.
//!
//! # Indexed construction
//!
//! The default overlap-graph builder is *indexed*: an inverted index from data-graph
//! vertex (and, for [`OverlapKind::Edge`], data-graph edge) to the occurrences whose
//! image touches it.  Two occurrences can only overlap — under *any* of the four
//! notions — if they share an image vertex (edge overlap additionally requires a
//! shared image edge), so only pairs that meet in some index bucket are ever tested.
//! This replaces the all-pairs `m²/2` comparisons of the naive builder with work
//! proportional to the candidate pairs actually sharing structure, which is what the
//! paper's Definition 2.2.5 graphs cost on real data.  The resulting graph is stored
//! in CSR form ([`SimpleGraph`]); the transitive-pair relation behind structural
//! overlap is a packed bitset ([`PairMatrix`]).
//!
//! The old all-pairs builder is retained as
//! [`OverlapAnalysis::overlap_graph_naive`] — it is the *test oracle*: the
//! `overlap_differential` property harness asserts the indexed builder (sequential
//! and parallel) produces an identical graph for every notion on randomly generated
//! pattern/data-graph pairs.
//!
//! # Caching
//!
//! Overlap graphs are built at most once per analysis: [`OverlapAnalysis`] carries an
//! [`OverlapCache`] keyed by [`OverlapKind`], so `mis_under`, `mcp_under`,
//! `overlap_edge_count` and `overlap_census` on the same pattern share one build per
//! notion instead of each re-running the construction.  [`OverlapCache::builds`]
//! exposes the build counter the cache tests assert on.

use crate::occurrences::OccurrenceSet;
use ffsm_graph::automorphism::{transitive_pair_matrix, PairMatrix};
use ffsm_graph::isomorphism::Embedding;
use ffsm_graph::VertexId;
use ffsm_hypergraph::independent_set::{exact_max_independent_set, SimpleGraph};
use ffsm_hypergraph::SearchBudget;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The overlap notion used when two occurrences are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum OverlapKind {
    /// Vertex overlap (Definition 2.2.3): the image vertex sets intersect.
    #[default]
    Simple,
    /// Harmful overlap (Definition 4.5.1, Fiedler & Borgelt): some pattern node's two
    /// images both lie in the intersection of the image sets.
    Harmful,
    /// Structural overlap (Definition 4.5.2): some transitive node pair (v, w) has
    /// `f1(v) = f2(w)` inside the intersection.
    Structural,
    /// Edge overlap (Definition 2.2.4): the image *edge* sets intersect.  Stricter
    /// than vertex overlap (edge overlap ⇒ simple overlap), so its overlap graph is
    /// sparser and the resulting MIS-style support larger.
    Edge,
}

impl OverlapKind {
    /// Every notion, in declaration order (the order used by caches and censuses).
    pub fn all() -> [OverlapKind; 4] {
        [OverlapKind::Simple, OverlapKind::Harmful, OverlapKind::Structural, OverlapKind::Edge]
    }

    /// Dense index of the notion (cache slot).
    pub(crate) fn index(self) -> usize {
        match self {
            OverlapKind::Simple => 0,
            OverlapKind::Harmful => 1,
            OverlapKind::Structural => 2,
            OverlapKind::Edge => 3,
        }
    }

    /// Short name used in tables and the CLI (same text as the `Display` impl).
    pub fn name(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for OverlapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlapKind::Simple => f.pad("simple"),
            OverlapKind::Harmful => f.pad("harmful"),
            OverlapKind::Structural => f.pad("structural"),
            OverlapKind::Edge => f.pad("edge"),
        }
    }
}

impl std::str::FromStr for OverlapKind {
    type Err = crate::FfsmError;

    /// Parse an overlap-notion name, case-insensitively.  Accepts `simple` (alias
    /// `vertex`), `harmful`, `structural` and `edge`, mirroring
    /// [`crate::MeasureKind`]'s `FromStr`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "simple" | "vertex" => Ok(OverlapKind::Simple),
            "harmful" => Ok(OverlapKind::Harmful),
            "structural" => Ok(OverlapKind::Structural),
            "edge" => Ok(OverlapKind::Edge),
            _ => Err(crate::FfsmError::UnknownOverlap(s.trim().to_string())),
        }
    }
}

/// Which overlap-graph builder to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverlapBuild {
    /// Inverted-index construction (the default): only occurrence pairs sharing an
    /// image vertex (or image edge, for [`OverlapKind::Edge`]) are tested.
    #[default]
    Indexed,
    /// All-pairs construction — quadratic in the occurrences; the test oracle.
    Naive,
}

/// Overlap-graph construction options, threaded through
/// [`crate::MeasureConfig::overlap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapConfig {
    /// Builder selection.
    pub build: OverlapBuild,
    /// Worker threads for the indexed builder: `1` = sequential (the default),
    /// `0` = one per available core.  Mirrors `MiningSession::threads` and, like it,
    /// never changes the result.
    pub threads: usize,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig { build: OverlapBuild::Indexed, threads: 1 }
    }
}

/// Per-pattern cache of overlap graphs with a build counter.
///
/// One cache instance belongs to one pattern's analysis ([`OverlapAnalysis`] keys its
/// slots by [`OverlapKind`]; [`crate::SupportMeasures`] keys them by hypergraph
/// basis), so "invalidation across patterns" is structural: a new pattern gets a new
/// analysis and with it an empty cache.  The build counter only advances when a slot
/// is actually constructed, which is what the cache tests assert on.
#[derive(Debug)]
pub struct OverlapCache {
    slots: Vec<OnceLock<Arc<SimpleGraph>>>,
    builds: AtomicUsize,
}

impl Default for OverlapCache {
    /// One slot per [`OverlapKind`] — the layout [`OverlapAnalysis`] uses.
    fn default() -> Self {
        OverlapCache::with_slots(OverlapKind::all().len())
    }
}

impl OverlapCache {
    /// A cache with `n` empty slots.
    pub fn with_slots(n: usize) -> Self {
        OverlapCache {
            slots: (0..n).map(|_| OnceLock::new()).collect(),
            builds: AtomicUsize::new(0),
        }
    }

    /// The graph in `slot`, building (and counting) it on first access.
    pub fn get_or_build(
        &self,
        slot: usize,
        build: impl FnOnce() -> SimpleGraph,
    ) -> Arc<SimpleGraph> {
        self.slots[slot]
            .get_or_init(|| {
                self.builds.fetch_add(1, Ordering::Relaxed);
                Arc::new(build())
            })
            .clone()
    }

    /// How many graphs this cache has actually constructed.
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }
}

/// The image-edge half of the inverted index, only needed by [`OverlapKind::Edge`]
/// and therefore built lazily.
#[derive(Debug)]
struct EdgeIndex {
    /// Occurrence ids (ascending) per distinct data-graph image edge.
    edge_buckets: Vec<Vec<u32>>,
    /// Sorted unique image-edge bucket ids per occurrence.
    occ_edges: Vec<Vec<u32>>,
}

impl EdgeIndex {
    fn new(occurrences: &OccurrenceSet) -> Self {
        let m = occurrences.num_occurrences();
        let pattern_edges: Vec<(VertexId, VertexId)> = occurrences.pattern().edges().collect();
        let mut edge_ids: HashMap<(VertexId, VertexId), u32> = HashMap::new();
        let mut edge_buckets: Vec<Vec<u32>> = Vec::new();
        let mut occ_edges = Vec::with_capacity(m);
        for (i, emb) in occurrences.embeddings().iter().enumerate() {
            let mut ids: Vec<u32> = pattern_edges
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = (emb[u as usize], emb[v as usize]);
                    let next = edge_buckets.len() as u32;
                    let id = *edge_ids.entry((a.min(b), a.max(b))).or_insert(next);
                    if id == next {
                        edge_buckets.push(Vec::new());
                    }
                    id
                })
                .collect();
            ids.sort_unstable();
            ids.dedup();
            for &e in &ids {
                edge_buckets[e as usize].push(i as u32);
            }
            occ_edges.push(ids);
        }
        EdgeIndex { edge_buckets, occ_edges }
    }
}

/// The inverted index the default builder prunes candidate pairs with.  The vertex
/// half serves simple/harmful/structural overlap; the edge half is initialised on
/// the first edge-overlap query.
#[derive(Debug)]
struct OverlapIndex {
    /// Occurrence ids (ascending) per hypergraph vertex index.
    vertex_buckets: Vec<Vec<u32>>,
    /// Sorted unique hypergraph vertex indices per occurrence.
    occ_vertices: Vec<Vec<u32>>,
    /// Sorted unique data-graph image vertices per occurrence (for the membership
    /// tests of the harmful predicate).
    images: Vec<Vec<VertexId>>,
    /// Lazily built image-edge index ([`OverlapKind::Edge`] only).
    edge: OnceLock<EdgeIndex>,
}

impl OverlapIndex {
    fn new(occurrences: &OccurrenceSet) -> Self {
        let m = occurrences.num_occurrences();
        let vertex_buckets = occurrences.vertex_occurrence_index();
        let mut occ_vertices = Vec::with_capacity(m);
        let mut images = Vec::with_capacity(m);
        for emb in occurrences.embeddings() {
            let mut dense: Vec<u32> = emb
                .iter()
                .map(|&v| occurrences.hypergraph_index(v).expect("image is indexed") as u32)
                .collect();
            dense.sort_unstable();
            dense.dedup();
            occ_vertices.push(dense);
            let mut img: Vec<VertexId> = emb.clone();
            img.sort_unstable();
            img.dedup();
            images.push(img);
        }
        OverlapIndex { vertex_buckets, occ_vertices, images, edge: OnceLock::new() }
    }

    fn edge(&self, occurrences: &OccurrenceSet) -> &EdgeIndex {
        self.edge.get_or_init(|| EdgeIndex::new(occurrences))
    }
}

/// Pairwise overlap analysis for a set of occurrences of one pattern.
#[derive(Debug)]
pub struct OverlapAnalysis<'a> {
    occurrences: &'a OccurrenceSet,
    /// Packed symmetric relation: u, v are a transitive pair in some subgraph of the
    /// pattern.
    transitive: PairMatrix,
    config: OverlapConfig,
    index: OnceLock<OverlapIndex>,
    cache: OverlapCache,
}

impl<'a> OverlapAnalysis<'a> {
    /// Prepare the analysis (computes the pattern's transitive-pair relation once)
    /// with the default indexed, sequential builder.
    pub fn new(occurrences: &'a OccurrenceSet) -> Self {
        Self::with_config(occurrences, OverlapConfig::default())
    }

    /// Prepare the analysis with explicit builder options.
    pub fn with_config(occurrences: &'a OccurrenceSet, config: OverlapConfig) -> Self {
        let transitive = transitive_pair_matrix(occurrences.pattern());
        OverlapAnalysis {
            occurrences,
            transitive,
            config,
            index: OnceLock::new(),
            cache: OverlapCache::with_slots(OverlapKind::all().len()),
        }
    }

    /// How many overlap graphs this analysis has actually built (the cache hook the
    /// sharing tests assert on; at most one per [`OverlapKind`]).
    pub fn overlap_builds(&self) -> usize {
        self.cache.builds()
    }

    fn embedding(&self, i: usize) -> &Embedding {
        &self.occurrences.embeddings()[i]
    }

    fn index(&self) -> &OverlapIndex {
        self.index.get_or_init(|| OverlapIndex::new(self.occurrences))
    }

    /// Simple (vertex) overlap of occurrences `i` and `j`.
    pub fn simple_overlap(&self, i: usize, j: usize) -> bool {
        let a: BTreeSet<_> = self.embedding(i).iter().copied().collect();
        self.embedding(j).iter().any(|v| a.contains(v))
    }

    /// Harmful overlap (Definition 4.5.1): ∃ node v with f_i(v) and f_j(v) both in the
    /// intersection of the two image sets.
    pub fn harmful_overlap(&self, i: usize, j: usize) -> bool {
        let fi = self.embedding(i);
        let fj = self.embedding(j);
        let si: BTreeSet<_> = fi.iter().copied().collect();
        let sj: BTreeSet<_> = fj.iter().copied().collect();
        (0..fi.len()).any(|v| {
            let a = fi[v];
            let b = fj[v];
            si.contains(&a) && sj.contains(&a) && si.contains(&b) && sj.contains(&b)
        })
    }

    /// Structural overlap (Definition 4.5.2): ∃ transitive pair (v, w) with
    /// f_i(v) = f_j(w) in the intersection of the image sets.
    pub fn structural_overlap(&self, i: usize, j: usize) -> bool {
        let fi = self.embedding(i);
        let fj = self.embedding(j);
        let si: BTreeSet<_> = fi.iter().copied().collect();
        let sj: BTreeSet<_> = fj.iter().copied().collect();
        for (v, &shared) in fi.iter().enumerate() {
            for (w, &fjw) in fj.iter().enumerate() {
                if !self.transitive.get(v, w) {
                    continue;
                }
                if fjw == shared && si.contains(&shared) && sj.contains(&shared) {
                    return true;
                }
            }
        }
        false
    }

    /// Edge overlap (Definition 2.2.4): the two occurrences map some pattern edge onto
    /// the same data-graph edge.
    pub fn edge_overlap(&self, i: usize, j: usize) -> bool {
        let fi = self.embedding(i);
        let fj = self.embedding(j);
        let edges_of = |f: &Embedding| -> BTreeSet<(u32, u32)> {
            self.occurrences
                .pattern()
                .edges()
                .map(|(u, v)| {
                    let (a, b) = (f[u as usize], f[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect()
        };
        let ei = edges_of(fi);
        edges_of(fj).iter().any(|e| ei.contains(e))
    }

    /// Overlap of occurrences `i` and `j` under `kind`.
    pub fn overlaps(&self, i: usize, j: usize, kind: OverlapKind) -> bool {
        match kind {
            OverlapKind::Simple => self.simple_overlap(i, j),
            OverlapKind::Harmful => self.harmful_overlap(i, j),
            OverlapKind::Structural => self.structural_overlap(i, j),
            OverlapKind::Edge => self.edge_overlap(i, j),
        }
    }

    /// Overlap test for a candidate pair already known to share an image vertex (or,
    /// for [`OverlapKind::Edge`], an image edge).  Simple and edge overlap are then
    /// true by construction; harmful and structural reduce to allocation-free probes
    /// of the sorted image arrays and the packed transitive relation.
    fn candidate_overlaps(
        &self,
        index: &OverlapIndex,
        i: usize,
        j: usize,
        kind: OverlapKind,
    ) -> bool {
        match kind {
            OverlapKind::Simple | OverlapKind::Edge => true,
            OverlapKind::Harmful => {
                // f_i(v) ∈ images(i) and f_j(v) ∈ images(j) always hold, so the
                // four-way membership of Definition 4.5.1 reduces to the two cross
                // memberships below.
                let fi = self.embedding(i);
                let fj = self.embedding(j);
                let si = &index.images[i];
                let sj = &index.images[j];
                (0..fi.len())
                    .any(|v| sj.binary_search(&fi[v]).is_ok() && si.binary_search(&fj[v]).is_ok())
            }
            OverlapKind::Structural => {
                // f_i(v) = f_j(w) already lies in both image sets, so the condition
                // of Definition 4.5.2 reduces to a transitive pair with equal images.
                let fi = self.embedding(i);
                let fj = self.embedding(j);
                (0..fi.len())
                    .any(|v| (0..fj.len()).any(|w| self.transitive.get(v, w) && fi[v] == fj[w]))
            }
        }
    }

    /// Emit the overlap edges with smaller endpoint in `rows` into `out`, using the
    /// inverted index: for every occurrence `i`, only occurrences sharing one of its
    /// buckets are visited, each at most once (the `stamp` array dedupes occurrences
    /// appearing in several shared buckets).
    fn indexed_pairs_into(
        &self,
        index: &OverlapIndex,
        kind: OverlapKind,
        rows: std::ops::Range<usize>,
        out: &mut Vec<(usize, usize)>,
    ) {
        let (buckets, items) = match kind {
            OverlapKind::Edge => {
                let edge = index.edge(self.occurrences);
                (&edge.edge_buckets, &edge.occ_edges)
            }
            _ => (&index.vertex_buckets, &index.occ_vertices),
        };
        let m = index.images.len();
        let mut stamp = vec![u32::MAX; m];
        let mut probes = 0u64;
        for i in rows {
            for &item in &items[i] {
                for &j in &buckets[item as usize] {
                    let j = j as usize;
                    if j <= i || stamp[j] == i as u32 {
                        continue;
                    }
                    stamp[j] = i as u32;
                    probes += 1;
                    if self.candidate_overlaps(index, i, j, kind) {
                        out.push((i, j));
                    }
                }
            }
        }
        // One thread-local add per chunk, not per probe — the engine samples
        // these totals around each worker's slice of a level.
        ffsm_obs::tls::add_overlap_probes(probes);
    }

    /// The occurrence overlap graph under `kind` via the inverted index, built
    /// sequentially.
    pub fn overlap_graph_indexed(&self, kind: OverlapKind) -> SimpleGraph {
        self.overlap_graph_parallel(kind, 1)
    }

    /// The occurrence overlap graph under `kind` via the inverted index, with the
    /// candidate rows partitioned over `threads` workers (`1` = sequential, `0` = one
    /// per available core).  The partition and merge order are fixed, so the result
    /// is identical to the sequential build.
    pub fn overlap_graph_parallel(&self, kind: OverlapKind, threads: usize) -> SimpleGraph {
        let index = self.index();
        let m = self.occurrences.num_occurrences();
        let pairs = ffsm_hypergraph::parallel::emit_pairs_parallel(m, threads, |rows, out| {
            self.indexed_pairs_into(index, kind, rows, out)
        });
        SimpleGraph::from_edge_list(m, &pairs)
    }

    /// The occurrence overlap graph under `kind` via the retained all-pairs builder —
    /// the naive oracle the differential tests compare the indexed builder against.
    pub fn overlap_graph_naive(&self, kind: OverlapKind) -> SimpleGraph {
        let m = self.occurrences.num_occurrences();
        let mut pairs = Vec::new();
        for i in 0..m {
            for j in (i + 1)..m {
                if self.overlaps(i, j, kind) {
                    pairs.push((i, j));
                }
            }
        }
        ffsm_obs::tls::add_overlap_probes((m * m.saturating_sub(1) / 2) as u64);
        SimpleGraph::from_edge_list(m, &pairs)
    }

    /// The occurrence overlap graph under `kind` (Definition 2.2.5 with the chosen
    /// overlap notion): one vertex per occurrence, an edge for every overlapping
    /// pair.  Built with the configured strategy ([`OverlapBuild::Indexed`] by
    /// default) and cached: repeated calls — including through `mis_under`,
    /// `mcp_under`, `overlap_edge_count` and `overlap_census` — share one build per
    /// notion.
    pub fn overlap_graph(&self, kind: OverlapKind) -> Arc<SimpleGraph> {
        self.cache.get_or_build(kind.index(), || {
            // Coarse span: one clock pair per overlap-graph build (cached
            // rebuilds never re-enter this closure).
            let start = std::time::Instant::now();
            let graph = match self.config.build {
                OverlapBuild::Indexed => self.overlap_graph_parallel(kind, self.config.threads),
                OverlapBuild::Naive => self.overlap_graph_naive(kind),
            };
            ffsm_obs::tls::add_overlap_build_nanos(
                start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
            graph
        })
    }

    /// Number of overlapping pairs under `kind` (the overlap graph's edge count).
    pub fn overlap_edge_count(&self, kind: OverlapKind) -> usize {
        self.overlap_graph(kind).num_edges()
    }

    /// MIS-style support computed on the overlap graph built with `kind`; with
    /// `OverlapKind::Simple` this is exactly σMIS.
    pub fn mis_under(&self, kind: OverlapKind, budget: SearchBudget) -> usize {
        let g = self.overlap_graph(kind);
        exact_max_independent_set(&g, budget).value
    }

    /// MCP-style support (minimum clique partition, Calders et al.) on the overlap
    /// graph built with `kind`; with `OverlapKind::Simple` this is exactly σMCP.
    pub fn mcp_under(&self, kind: OverlapKind, budget: SearchBudget) -> usize {
        let g = self.overlap_graph(kind);
        ffsm_hypergraph::clique_cover::clique_cover_number(&g, budget).value
    }

    /// Summary of how many occurrence pairs overlap under each notion — the raw data
    /// behind Figures 9/10-style comparisons (experiment E8).  Computed from the
    /// cached overlap graphs, so a census after individual queries costs nothing
    /// extra.
    pub fn overlap_census(&self) -> OverlapCensus {
        OverlapCensus {
            num_occurrences: self.occurrences.num_occurrences(),
            simple: self.overlap_edge_count(OverlapKind::Simple),
            harmful: self.overlap_edge_count(OverlapKind::Harmful),
            structural: self.overlap_edge_count(OverlapKind::Structural),
            edge: self.overlap_edge_count(OverlapKind::Edge),
        }
    }
}

/// Counts of overlapping occurrence pairs under every notion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlapCensus {
    /// Number of occurrences compared.
    pub num_occurrences: usize,
    /// Pairs in simple (vertex) overlap.
    pub simple: usize,
    /// Pairs in harmful overlap.
    pub harmful: usize,
    /// Pairs in structural overlap.
    pub structural: usize,
    /// Pairs in edge overlap.
    pub edge: usize,
}

impl OverlapCensus {
    /// Total number of occurrence pairs.
    pub fn num_pairs(&self) -> usize {
        if self.num_occurrences < 2 {
            0
        } else {
            self.num_occurrences * (self.num_occurrences - 1) / 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::figures;
    use ffsm_graph::isomorphism::IsoConfig;

    fn analysis_for(
        example: &ffsm_graph::figures::FigureExample,
    ) -> (OccurrenceSet, Vec<ffsm_graph::isomorphism::Embedding>) {
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        let embeddings = occ.embeddings().to_vec();
        (occ, embeddings)
    }

    /// Index of the occurrence with the given image tuple.
    fn index_of(embeddings: &[ffsm_graph::isomorphism::Embedding], image: &[u32]) -> usize {
        embeddings.iter().position(|e| e.as_slice() == image).expect("occurrence present")
    }

    #[test]
    fn figure9_structural_without_harmful() {
        let example = figures::figure9();
        let (occ, embeddings) = analysis_for(&example);
        let analysis = OverlapAnalysis::new(&occ);
        // Paper numbering: g1 = (1,2,3), g2 = (5,3,4), g3 = (5,3,2); zero-based below.
        let g1 = index_of(&embeddings, &[0, 1, 2]);
        let g2 = index_of(&embeddings, &[4, 2, 3]);
        let g3 = index_of(&embeddings, &[4, 2, 1]);
        // (g1, g2): structural but not harmful.
        assert!(analysis.structural_overlap(g1, g2));
        assert!(!analysis.harmful_overlap(g1, g2));
        assert!(analysis.simple_overlap(g1, g2));
        // (g1, g3): both structural and harmful.
        assert!(analysis.structural_overlap(g1, g3));
        assert!(analysis.harmful_overlap(g1, g3));
    }

    #[test]
    fn figure10_harmful_without_structural_and_simple_only() {
        let example = figures::figure10();
        let (occ, embeddings) = analysis_for(&example);
        let analysis = OverlapAnalysis::new(&occ);
        let f1 = index_of(&embeddings, &[0, 1, 2, 3]);
        let f2 = index_of(&embeddings, &[3, 4, 5, 0]);
        let f3 = index_of(&embeddings, &[6, 7, 8, 3]);
        // (f1, f2): harmful but not structural.
        assert!(analysis.harmful_overlap(f1, f2));
        assert!(!analysis.structural_overlap(f1, f2));
        // (f2, f3): simple overlap only.
        assert!(analysis.simple_overlap(f2, f3));
        assert!(!analysis.harmful_overlap(f2, f3));
        assert!(!analysis.structural_overlap(f2, f3));
    }

    #[test]
    fn harmful_and_structural_imply_simple() {
        for example in ffsm_graph::figures::all_figures() {
            let (occ, _) = analysis_for(&example);
            let analysis = OverlapAnalysis::new(&occ);
            let m = occ.num_occurrences();
            for i in 0..m {
                for j in (i + 1)..m {
                    if analysis.harmful_overlap(i, j) || analysis.structural_overlap(i, j) {
                        assert!(
                            analysis.simple_overlap(i, j),
                            "weaker overlap without simple overlap on {}",
                            example.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn weaker_overlap_graphs_are_sparser_and_mis_larger() {
        for example in ffsm_graph::figures::all_figures() {
            let (occ, _) = analysis_for(&example);
            let analysis = OverlapAnalysis::new(&occ);
            let simple_edges = analysis.overlap_edge_count(OverlapKind::Simple);
            let harmful_edges = analysis.overlap_edge_count(OverlapKind::Harmful);
            let structural_edges = analysis.overlap_edge_count(OverlapKind::Structural);
            assert!(harmful_edges <= simple_edges);
            assert!(structural_edges <= simple_edges);
            let budget = SearchBudget::default();
            let mis_simple = analysis.mis_under(OverlapKind::Simple, budget);
            let mis_harmful = analysis.mis_under(OverlapKind::Harmful, budget);
            let mis_structural = analysis.mis_under(OverlapKind::Structural, budget);
            assert!(mis_harmful >= mis_simple);
            assert!(mis_structural >= mis_simple);
        }
    }

    #[test]
    fn edge_overlap_implies_simple_and_is_rarer() {
        for example in ffsm_graph::figures::all_figures() {
            let (occ, _) = analysis_for(&example);
            let analysis = OverlapAnalysis::new(&occ);
            let m = occ.num_occurrences();
            for i in 0..m {
                for j in (i + 1)..m {
                    if analysis.edge_overlap(i, j) {
                        assert!(
                            analysis.simple_overlap(i, j),
                            "edge overlap without vertex overlap"
                        );
                    }
                }
            }
            assert!(
                analysis.overlap_edge_count(OverlapKind::Edge)
                    <= analysis.overlap_edge_count(OverlapKind::Simple)
            );
            assert!(
                analysis.mis_under(OverlapKind::Edge, SearchBudget::default())
                    >= analysis.mis_under(OverlapKind::Simple, SearchBudget::default())
            );
        }
    }

    #[test]
    fn census_counts_are_consistent() {
        let example = figures::figure6();
        let (occ, _) = analysis_for(&example);
        let analysis = OverlapAnalysis::new(&occ);
        let census = analysis.overlap_census();
        assert_eq!(census.num_occurrences, 7);
        assert_eq!(census.num_pairs(), 21);
        assert_eq!(census.simple, analysis.overlap_edge_count(OverlapKind::Simple));
        assert_eq!(census.harmful, analysis.overlap_edge_count(OverlapKind::Harmful));
        assert_eq!(census.structural, analysis.overlap_edge_count(OverlapKind::Structural));
        assert_eq!(census.edge, analysis.overlap_edge_count(OverlapKind::Edge));
        assert!(census.harmful <= census.simple);
        assert!(census.edge <= census.simple);
        // The single-edge pattern has no pattern edge shared between distinct data
        // edges, so edge overlap never fires here.
        assert_eq!(census.edge, 0);
        assert_eq!(OverlapCensus::default().num_pairs(), 0);
    }

    #[test]
    fn mcp_under_simple_bounds_mis_under_simple() {
        for example in ffsm_graph::figures::all_figures() {
            let (occ, _) = analysis_for(&example);
            let analysis = OverlapAnalysis::new(&occ);
            let budget = SearchBudget::default();
            assert!(
                analysis.mis_under(OverlapKind::Simple, budget)
                    <= analysis.mcp_under(OverlapKind::Simple, budget),
                "MIS > MCP on {}",
                example.name
            );
        }
    }

    #[test]
    fn overlap_with_self_is_total() {
        let example = figures::figure2();
        let (occ, _) = analysis_for(&example);
        let analysis = OverlapAnalysis::new(&occ);
        // Occurrences of the triangle all share the vertex set {1,2,3}: every pair
        // overlaps under every notion (the triangle is fully transitive).
        let m = occ.num_occurrences();
        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                assert!(analysis.simple_overlap(i, j));
                assert!(analysis.harmful_overlap(i, j));
                assert!(analysis.structural_overlap(i, j));
            }
        }
        assert_eq!(analysis.mis_under(OverlapKind::Simple, SearchBudget::default()), 1);
    }

    #[test]
    fn indexed_builders_match_naive_oracle_on_all_figures() {
        for example in ffsm_graph::figures::all_figures() {
            let (occ, _) = analysis_for(&example);
            let analysis = OverlapAnalysis::new(&occ);
            for kind in OverlapKind::all() {
                let naive = analysis.overlap_graph_naive(kind);
                for (label, built) in [
                    ("indexed", analysis.overlap_graph_indexed(kind)),
                    ("parallel", analysis.overlap_graph_parallel(kind, 3)),
                    ("all-cores", analysis.overlap_graph_parallel(kind, 0)),
                ] {
                    assert_eq!(
                        built.num_edges(),
                        naive.num_edges(),
                        "{label} vs naive edge count, {kind} on {}",
                        example.name
                    );
                    for v in 0..naive.num_vertices() {
                        assert_eq!(
                            built.neighbors(v),
                            naive.neighbors(v),
                            "{label} vs naive row {v}, {kind} on {}",
                            example.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cache_builds_each_kind_once() {
        let example = figures::figure6();
        let (occ, _) = analysis_for(&example);
        let analysis = OverlapAnalysis::new(&occ);
        assert_eq!(analysis.overlap_builds(), 0);
        let budget = SearchBudget::default();
        analysis.mis_under(OverlapKind::Simple, budget);
        analysis.mcp_under(OverlapKind::Simple, budget);
        analysis.overlap_edge_count(OverlapKind::Simple);
        assert_eq!(analysis.overlap_builds(), 1, "simple graph shared across queries");
        analysis.overlap_census();
        assert_eq!(analysis.overlap_builds(), 4, "census adds the three other notions");
        analysis.overlap_census();
        assert_eq!(analysis.overlap_builds(), 4, "census is fully cached");
        // A fresh analysis (new pattern / level) starts from an empty cache.
        let (occ2, _) = analysis_for(&figures::figure2());
        let analysis2 = OverlapAnalysis::new(&occ2);
        assert_eq!(analysis2.overlap_builds(), 0);
    }

    #[test]
    fn naive_strategy_is_selectable_and_agrees() {
        let example = figures::figure8();
        let (occ, _) = analysis_for(&example);
        let indexed = OverlapAnalysis::new(&occ);
        let naive = OverlapAnalysis::with_config(
            &occ,
            OverlapConfig { build: OverlapBuild::Naive, threads: 1 },
        );
        for kind in OverlapKind::all() {
            assert_eq!(indexed.overlap_edge_count(kind), naive.overlap_edge_count(kind), "{kind}");
        }
        assert_eq!(naive.overlap_builds(), 4);
    }

    #[test]
    fn overlap_kind_parses_its_own_display() {
        for kind in OverlapKind::all() {
            let parsed: OverlapKind = kind.to_string().parse().expect("round trip");
            assert_eq!(parsed, kind);
        }
        assert_eq!("VERTEX".parse::<OverlapKind>().unwrap(), OverlapKind::Simple);
        assert_eq!(" Harmful ".parse::<OverlapKind>().unwrap(), OverlapKind::Harmful);
        assert!(matches!("bogus".parse::<OverlapKind>(), Err(crate::FfsmError::UnknownOverlap(_))));
        // Hash + Ord derives: usable as map/set keys.
        let set: std::collections::BTreeSet<OverlapKind> = OverlapKind::all().into_iter().collect();
        assert_eq!(set.len(), 4);
        let mut map = std::collections::HashMap::new();
        map.insert(OverlapKind::Edge, 1);
        assert_eq!(map[&OverlapKind::Edge], 1);
    }
}
