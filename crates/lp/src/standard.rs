//! Conversion of a [`Problem`](crate::Problem) into standard form for the simplex
//! method.
//!
//! Standard form used here:
//!
//! * minimise `c·x`
//! * `A x = b`, with `b ≥ 0`
//! * `x ≥ 0`
//!
//! Slack, surplus and artificial variables are appended after the structural
//! variables.  Rows are scaled so that every right-hand side is non-negative, which is
//! the precondition for the phase-1 artificial basis.

use crate::problem::{ConstraintOp, Objective, Problem};

/// A linear program in equality standard form, ready for the simplex tableau.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Number of structural (original) variables.
    pub num_structural: usize,
    /// Total number of variables (structural + slack/surplus + artificial).
    pub num_vars: usize,
    /// Dense constraint matrix, row major: `rows × num_vars`.
    pub a: Vec<Vec<f64>>,
    /// Right-hand sides, all non-negative.
    pub b: Vec<f64>,
    /// Minimisation costs over all variables (zero for slack/artificial columns).
    pub c: Vec<f64>,
    /// Column indices of artificial variables (one per `≥` / `=` row).
    pub artificial: Vec<usize>,
    /// Initial basis: for every row, the column that starts basic in it.
    pub initial_basis: Vec<usize>,
    /// `true` if the original problem was a maximisation (costs were negated).
    pub negated_objective: bool,
}

impl StandardForm {
    /// Build the standard form of `problem`.
    pub fn from_problem(problem: &Problem) -> StandardForm {
        let n = problem.num_vars();
        // Materialise all rows: explicit constraints plus upper-bound rows.
        struct Row {
            dense: Vec<f64>,
            op: ConstraintOp,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(problem.num_constraints());
        for c in problem.constraints() {
            let mut dense = vec![0.0; n];
            for &(v, coeff) in &c.coeffs {
                dense[v] += coeff;
            }
            rows.push(Row { dense, op: c.op, rhs: c.rhs });
        }
        for (v, ub) in problem.upper_bounds().iter().enumerate() {
            if let Some(bound) = ub {
                let mut dense = vec![0.0; n];
                dense[v] = 1.0;
                rows.push(Row { dense, op: ConstraintOp::Le, rhs: *bound });
            }
        }

        // Normalise signs so that rhs >= 0.
        for row in rows.iter_mut() {
            if row.rhs < 0.0 {
                row.rhs = -row.rhs;
                for x in row.dense.iter_mut() {
                    *x = -*x;
                }
                row.op = match row.op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
            }
        }

        // Count auxiliary columns.
        let mut num_slack = 0usize; // one per Le or Ge row
        let mut num_artificial = 0usize; // one per Ge or Eq row
        for row in &rows {
            match row.op {
                ConstraintOp::Le => num_slack += 1,
                ConstraintOp::Ge => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                ConstraintOp::Eq => num_artificial += 1,
            }
        }
        let num_vars = n + num_slack + num_artificial;

        let negated_objective = problem.objective_direction() == Objective::Maximize;
        let mut c = vec![0.0; num_vars];
        for (v, &cost) in problem.costs().iter().enumerate() {
            c[v] = if negated_objective { -cost } else { cost };
        }

        let mut a: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
        let mut b: Vec<f64> = Vec::with_capacity(rows.len());
        let mut artificial = Vec::with_capacity(num_artificial);
        let mut initial_basis = Vec::with_capacity(rows.len());

        let mut next_slack = n;
        let mut next_artificial = n + num_slack;
        for row in &rows {
            let mut dense = vec![0.0; num_vars];
            dense[..n].copy_from_slice(&row.dense);
            match row.op {
                ConstraintOp::Le => {
                    dense[next_slack] = 1.0;
                    initial_basis.push(next_slack);
                    next_slack += 1;
                }
                ConstraintOp::Ge => {
                    dense[next_slack] = -1.0;
                    next_slack += 1;
                    dense[next_artificial] = 1.0;
                    artificial.push(next_artificial);
                    initial_basis.push(next_artificial);
                    next_artificial += 1;
                }
                ConstraintOp::Eq => {
                    dense[next_artificial] = 1.0;
                    artificial.push(next_artificial);
                    initial_basis.push(next_artificial);
                    next_artificial += 1;
                }
            }
            a.push(dense);
            b.push(row.rhs);
        }

        StandardForm {
            num_structural: n,
            num_vars,
            a,
            b,
            c,
            artificial,
            initial_basis,
            negated_objective,
        }
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.a.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Objective, Problem};

    #[test]
    fn le_row_gets_slack_only() {
        let mut p = Problem::new(Objective::Minimize, 2);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 5.0);
        let sf = StandardForm::from_problem(&p);
        assert_eq!(sf.num_rows(), 1);
        assert_eq!(sf.num_vars, 3);
        assert!(sf.artificial.is_empty());
        assert_eq!(sf.initial_basis, vec![2]);
    }

    #[test]
    fn ge_row_gets_surplus_and_artificial() {
        let mut p = Problem::new(Objective::Minimize, 1);
        p.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 5.0);
        let sf = StandardForm::from_problem(&p);
        assert_eq!(sf.num_vars, 3); // x, surplus, artificial
        assert_eq!(sf.artificial, vec![2]);
        assert_eq!(sf.a[0], vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn negative_rhs_flips_row() {
        let mut p = Problem::new(Objective::Minimize, 1);
        p.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, -3.0);
        let sf = StandardForm::from_problem(&p);
        // Becomes -x >= 3 after flip i.e. Ge row with rhs 3.
        assert!(sf.b[0] >= 0.0);
        assert_eq!(sf.artificial.len(), 1);
    }

    #[test]
    fn maximization_negates_costs() {
        let mut p = Problem::new(Objective::Maximize, 1);
        p.set_objective(0, 7.0);
        let sf = StandardForm::from_problem(&p);
        assert!(sf.negated_objective);
        assert_eq!(sf.c[0], -7.0);
    }

    #[test]
    fn upper_bounds_become_rows() {
        let mut p = Problem::new(Objective::Maximize, 1);
        p.set_upper_bound(0, 2.5);
        let sf = StandardForm::from_problem(&p);
        assert_eq!(sf.num_rows(), 1);
        assert_eq!(sf.b[0], 2.5);
    }
}
