//! # ffsm-obs — the observability layer: metrics registry, histograms, phase tracing
//!
//! Dependency-free instrumentation primitives shared by every crate in the
//! workspace.  Three pieces:
//!
//! 1. [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and log-bucketed
//!    [`Histogram`]s.  Counters and histograms are **sharded**: each metric holds
//!    one cache-line-aligned atomic cell per shard, a thread writes only its own
//!    shard (one relaxed `fetch_add`, no contention with other writers), and the
//!    shards are summed only on [`MetricsRegistry::snapshot`] — the scrape pays
//!    the aggregation cost, not the hot loop.
//! 2. [`Phase`] / [`PhaseTimes`] — per-phase wall-time accounting for the mining
//!    pipeline.  The *exclusive* phases ([`Phase::IndexBuild`],
//!    [`Phase::SupportEval`], [`Phase::Extension`], [`Phase::DeltaRepair`])
//!    partition a run's wall time and therefore sum to it; the remaining phases
//!    ([`Phase::CandidateSpace`], [`Phase::Search`], [`Phase::OverlapBuild`],
//!    [`Phase::ShardLoad`]) are *nested* inside [`Phase::SupportEval`] and
//!    decompose it without being double-counted by
//!    [`PhaseTimes::exclusive_total`].
//! 3. [`SearchCounters`] — the plain-`u64` counter block the matcher's search
//!    arena embeds.  The innermost loop increments locals, never atomics; totals
//!    are scraped from the per-worker arenas after each level, so merged shards
//!    equal a single-threaded run's totals exactly (each candidate's search is
//!    deterministic, the thread partition only redistributes candidates).
//!
//! The [`tls`] module carries the two measurements that have no struct to ride
//! on (overlap-graph builds happen deep inside a `SupportMeasure` with no arena
//! in scope): per-thread totals the mining engine samples around each worker's
//! slice of a level.
//!
//! ## Sampling rule and overhead contract
//!
//! Counters are **always on**: each is a single register-width add on memory the
//! owning thread already touches.  Wall-clock *spans* are sampled at two
//! granularities: coarse spans (one `Instant` pair per level or per request)
//! are always on, while fine-grained per-candidate spans (candidate-space build
//! and search time inside support evaluation) only run when a session opts in,
//! so an uninstrumented run never pays a clock read in the per-candidate path.
//! The contract — enforced by `obs_bench` in CI — is that a fully instrumented
//! run is bit-for-bit identical in output and at most 3% slower than an
//! uninstrumented one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of shards per counter/histogram.  Threads are assigned round-robin, so
/// up to this many writers proceed without sharing a cache line.
pub const SHARD_COUNT: usize = 8;

/// The round-robin source of per-thread shard ids.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's shard index, assigned round-robin on first use and cached.
fn shard_id() -> usize {
    SHARD_ID.with(|cell| {
        let id = cell.get();
        if id != usize::MAX {
            return id;
        }
        let id = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
        cell.set(id);
        id
    })
}

/// One cache-line-aligned atomic cell — the unit of sharding.  The alignment
/// keeps two shards from sharing a line, so concurrent writers never ping-pong.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing sharded counter.
///
/// [`Counter::add`] is one relaxed `fetch_add` on the calling thread's shard;
/// [`Counter::value`] sums the shards (scrape-time cost only).
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; SHARD_COUNT],
}

impl Counter {
    /// Increment by `n` on the calling thread's shard.
    pub fn add(&self, n: u64) {
        self.shards[shard_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The aggregated value across all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A signed point-in-time gauge (queue depth, active sessions).  Gauges move on
/// request boundaries, not in hot loops, so one atomic suffices.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `0` holds the value `0`, bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k - 1]` — `floor(log2(v)) + 1`.
pub const BUCKETS: usize = 65;

/// One shard of a histogram: 65 log2 buckets plus the exact running sum.
#[repr(align(64))]
#[derive(Debug)]
struct HistogramShard {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for HistogramShard {
    fn default() -> Self {
        HistogramShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index of `v`: `0` for zero, `floor(log2(v)) + 1` otherwise.
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The largest value a bucket can hold — the conservative (upper-bound) value a
/// percentile read reports for it.
pub fn bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64.. => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// A sharded log2-bucketed histogram of `u64` samples (microseconds, counts…).
///
/// Recording is two relaxed adds on the calling thread's shard; p50/p90/p99 are
/// derived from the bucket CDF at scrape time, reporting each bucket's upper
/// bound (so a percentile is never under-reported by more than one octave).
#[derive(Debug, Default)]
pub struct Histogram {
    shards: [HistogramShard; SHARD_COUNT],
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_id()];
        shard.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as whole microseconds.
    pub fn record_duration_us(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Aggregate the shards into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in &self.shards {
            for (total, cell) in buckets.iter_mut().zip(&shard.buckets) {
                *total += cell.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count, sum }
    }
}

/// An aggregated view of one [`Histogram`] at scrape time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`] for the bucket boundaries).
    pub buckets: [u64; BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Exact sum of all samples (wrapping).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `p` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(p · count)`.  Zero when the
    /// histogram is empty.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(k);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// The arithmetic mean of the samples (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Compact `bucket:count` encoding of the non-empty buckets, ascending —
    /// e.g. `"0:3,7:12"` — flat-frame friendly for the `metrics` protocol op.
    pub fn encode_buckets(&self) -> String {
        let mut out = String::new();
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(&format!("{k}:{c}"));
        }
        out
    }
}

/// A registry of named metrics.  Registration is get-or-create by name (handles
/// are `Arc`s, so hot paths register once and keep the handle); `snapshot`
/// aggregates every metric, sorted by name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Aggregate every registered metric, sorted by name within each kind.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.value()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// The aggregated state of a [`MetricsRegistry`] at one scrape.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` pairs, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// A phase of the mining pipeline, for wall-time attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Building (or patching) the shared [`GraphIndex`]-style matching index.
    IndexBuild,
    /// Building + refining a per-pattern candidate space (nested in
    /// [`Phase::SupportEval`]).
    CandidateSpace,
    /// The embedding search itself (nested in [`Phase::SupportEval`]).
    Search,
    /// Building an occurrence overlap graph inside a support measure (nested in
    /// [`Phase::SupportEval`]).
    OverlapBuild,
    /// Evaluating the support of one level's candidates, wall-to-wall.
    SupportEval,
    /// Generating and deduplicating the next level's extensions.
    Extension,
    /// Patching indices / applying graph deltas between epochs.
    DeltaRepair,
    /// Reloading spilled shards from a `ShardStore` during partitioned mining
    /// (nested in [`Phase::SupportEval`]).
    ShardLoad,
    /// Computing certified support bounds in a bounds-first session — index
    /// cardinality bounds, containment-chain bounds and LP relaxations (nested
    /// in [`Phase::SupportEval`]).
    BoundsEval,
}

impl Phase {
    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = 9;

    /// Every phase, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::IndexBuild,
        Phase::CandidateSpace,
        Phase::Search,
        Phase::OverlapBuild,
        Phase::SupportEval,
        Phase::Extension,
        Phase::DeltaRepair,
        Phase::ShardLoad,
        Phase::BoundsEval,
    ];

    /// Stable snake_case name (protocol frames, JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::IndexBuild => "index_build",
            Phase::CandidateSpace => "candidate_space",
            Phase::Search => "search",
            Phase::OverlapBuild => "overlap_build",
            Phase::SupportEval => "support_eval",
            Phase::Extension => "extension",
            Phase::DeltaRepair => "delta_repair",
            Phase::ShardLoad => "shard_load",
            Phase::BoundsEval => "bounds_eval",
        }
    }

    /// `true` for the phases that partition wall time without overlap; the
    /// others are nested inside [`Phase::SupportEval`] and excluded from
    /// [`PhaseTimes::exclusive_total`].
    pub fn is_exclusive(self) -> bool {
        matches!(
            self,
            Phase::IndexBuild | Phase::SupportEval | Phase::Extension | Phase::DeltaRepair
        )
    }

    fn index(self) -> usize {
        match self {
            Phase::IndexBuild => 0,
            Phase::CandidateSpace => 1,
            Phase::Search => 2,
            Phase::OverlapBuild => 3,
            Phase::SupportEval => 4,
            Phase::Extension => 5,
            Phase::DeltaRepair => 6,
            Phase::ShardLoad => 7,
            Phase::BoundsEval => 8,
        }
    }
}

/// Accumulated per-phase wall time, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    nanos: [u64; Phase::COUNT],
}

impl PhaseTimes {
    /// All zeros.
    pub fn new() -> Self {
        PhaseTimes::default()
    }

    /// Add a measured duration to `phase`.
    pub fn record(&mut self, phase: Phase, d: Duration) {
        self.add_nanos(phase, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Add raw nanoseconds to `phase`.
    pub fn add_nanos(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] = self.nanos[phase.index()].saturating_add(nanos);
    }

    /// Accumulated nanoseconds in `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Accumulated time in `phase`.
    pub fn get(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos(phase))
    }

    /// Fold another accounting into this one (phase-wise sum).
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a = a.saturating_add(*b);
        }
    }

    /// Phase-wise `self − earlier` (for deriving per-level deltas from
    /// cumulative snapshots).
    pub fn saturating_sub(&self, earlier: &PhaseTimes) -> PhaseTimes {
        let mut out = PhaseTimes::default();
        for ((o, a), b) in out.nanos.iter_mut().zip(&self.nanos).zip(&earlier.nanos) {
            *o = a.saturating_sub(*b);
        }
        out
    }

    /// Total nanoseconds across the exclusive phases — the part of wall time
    /// the accounting explains without double counting.
    pub fn exclusive_total_nanos(&self) -> u64 {
        Phase::ALL
            .iter()
            .filter(|p| p.is_exclusive())
            .map(|p| self.nanos(*p))
            .fold(0u64, u64::saturating_add)
    }

    /// Total time across the exclusive phases.
    pub fn exclusive_total(&self) -> Duration {
        Duration::from_nanos(self.exclusive_total_nanos())
    }

    /// `(phase, nanos)` for every phase, in [`Phase::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.nanos(p)))
    }
}

/// The matcher's per-arena counter block: plain `u64` adds in the search loop
/// (no atomics — each arena is owned by exactly one worker), scraped and summed
/// across arenas after each level.  Totals are invariant under the worker
/// partition because each candidate's search is deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchCounters {
    /// Searches served (one per `prepare` — how often the arena was reused).
    pub searches: u64,
    /// Candidate scan steps taken in the search loop.
    pub steps: u64,
    /// Failing-set backjumps taken (whole sibling pools skipped).
    pub backjumps: u64,
    /// Pools materialised by the pool builder.
    pub pools_filled: u64,
    /// Pools that came out fully edge-verified via the all-hub word-parallel
    /// AND (the backward `has_edge` ladder was skipped entirely).
    pub hub_verified_pools: u64,
    /// Cooperative cancellation polls (one per [`CHECK_STRIDE`] steps).
    ///
    /// [`CHECK_STRIDE`]: https://docs.rs/ffsm-graph
    pub cancel_polls: u64,
    /// Candidate-space refinement sweeps run while building spaces.
    pub refine_rounds: u64,
}

impl SearchCounters {
    /// Field-wise sum.
    pub fn merge(&mut self, other: &SearchCounters) {
        self.searches += other.searches;
        self.steps += other.steps;
        self.backjumps += other.backjumps;
        self.pools_filled += other.pools_filled;
        self.hub_verified_pools += other.hub_verified_pools;
        self.cancel_polls += other.cancel_polls;
        self.refine_rounds += other.refine_rounds;
    }

    /// Field-wise `self − earlier` (per-level deltas from cumulative snapshots).
    pub fn saturating_sub(&self, earlier: &SearchCounters) -> SearchCounters {
        SearchCounters {
            searches: self.searches.saturating_sub(earlier.searches),
            steps: self.steps.saturating_sub(earlier.steps),
            backjumps: self.backjumps.saturating_sub(earlier.backjumps),
            pools_filled: self.pools_filled.saturating_sub(earlier.pools_filled),
            hub_verified_pools: self.hub_verified_pools.saturating_sub(earlier.hub_verified_pools),
            cancel_polls: self.cancel_polls.saturating_sub(earlier.cancel_polls),
            refine_rounds: self.refine_rounds.saturating_sub(earlier.refine_rounds),
        }
    }
}

/// Per-thread totals for measurements that have no struct to ride on: overlap
/// graph construction happens deep inside a `SupportMeasure` call with neither
/// an arena nor a registry in scope, so it adds to these thread-locals and the
/// mining engine samples the delta around each worker's slice of a level.
pub mod tls {
    use std::cell::Cell;

    /// A point-in-time copy of this thread's totals.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct ThreadTotals {
        /// Candidate-pair probes made by the overlap builders.
        pub overlap_probes: u64,
        /// Nanoseconds spent building overlap graphs.
        pub overlap_build_nanos: u64,
    }

    impl ThreadTotals {
        /// Field-wise `self − earlier`.
        pub fn delta_since(&self, earlier: &ThreadTotals) -> ThreadTotals {
            ThreadTotals {
                overlap_probes: self.overlap_probes.wrapping_sub(earlier.overlap_probes),
                overlap_build_nanos: self
                    .overlap_build_nanos
                    .wrapping_sub(earlier.overlap_build_nanos),
            }
        }
    }

    thread_local! {
        static TOTALS: Cell<ThreadTotals> = const { Cell::new(ThreadTotals {
            overlap_probes: 0,
            overlap_build_nanos: 0,
        }) };
    }

    /// Add overlap candidate-pair probes to this thread's totals.
    pub fn add_overlap_probes(n: u64) {
        TOTALS.with(|t| {
            let mut v = t.get();
            v.overlap_probes = v.overlap_probes.wrapping_add(n);
            t.set(v);
        });
    }

    /// Add overlap-build nanoseconds to this thread's totals.
    pub fn add_overlap_build_nanos(n: u64) {
        TOTALS.with(|t| {
            let mut v = t.get();
            v.overlap_build_nanos = v.overlap_build_nanos.wrapping_add(n);
            t.set(v);
        });
    }

    /// This thread's current totals.
    pub fn snapshot() -> ThreadTotals {
        TOTALS.with(|t| t.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 20, u64::MAX] {
            let k = bucket_of(v);
            assert!(v <= bucket_upper(k));
            if k > 0 {
                assert!(v > bucket_upper(k - 1));
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_upper_bounds() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        // p50 of 1..=100 is 50; its bucket [32, 63] reports 63.
        assert_eq!(snap.quantile(0.50), 63);
        assert_eq!(snap.quantile(1.0), 127);
        assert!(snap.quantile(0.99) >= 99);
        assert_eq!(snap.mean(), 50.5);
        // Empty histogram.
        assert_eq!(Histogram::default().snapshot().quantile(0.5), 0);
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("steps");
        counter.add(5);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let registry = registry.clone();
                scope.spawn(move || {
                    // Re-registering by name hits the same metric.
                    registry.counter("steps").add(10);
                });
            }
        });
        assert_eq!(counter.value(), 45);
        let snap = registry.snapshot();
        assert_eq!(snap.counters, vec![("steps".to_string(), 45)]);
    }

    #[test]
    fn gauges_and_histograms_snapshot_sorted_by_name() {
        let registry = MetricsRegistry::new();
        registry.gauge("queue_depth").set(3);
        registry.gauge("active").add(2);
        registry.histogram("lat_b").record(10);
        registry.histogram("lat_a").record(7);
        let snap = registry.snapshot();
        assert_eq!(snap.gauges, vec![("active".to_string(), 2), ("queue_depth".to_string(), 3)]);
        let names: Vec<&str> = snap.histograms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["lat_a", "lat_b"]);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn bucket_encoding_is_compact_and_ordered() {
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        h.record(100);
        let snap = h.snapshot();
        assert_eq!(snap.encode_buckets(), "0:2,7:1");
    }

    #[test]
    fn phase_times_merge_delta_and_exclusive_total() {
        let mut a = PhaseTimes::new();
        a.record(Phase::IndexBuild, Duration::from_nanos(100));
        a.record(Phase::SupportEval, Duration::from_nanos(900));
        a.record(Phase::Search, Duration::from_nanos(700)); // nested — not double counted
        let mut b = PhaseTimes::new();
        b.record(Phase::Extension, Duration::from_nanos(50));
        b.merge(&a);
        assert_eq!(b.exclusive_total_nanos(), 100 + 900 + 50);
        assert_eq!(b.nanos(Phase::Search), 700);
        let delta = b.saturating_sub(&a);
        assert_eq!(delta.nanos(Phase::Extension), 50);
        assert_eq!(delta.nanos(Phase::SupportEval), 0);
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        for p in Phase::ALL {
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn search_counters_merge_and_sub() {
        let mut a = SearchCounters { steps: 10, backjumps: 2, ..SearchCounters::default() };
        let b = SearchCounters { steps: 5, searches: 1, ..SearchCounters::default() };
        a.merge(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.searches, 1);
        let d = a.saturating_sub(&b);
        assert_eq!(d.steps, 10);
        assert_eq!(d.backjumps, 2);
    }

    #[test]
    fn tls_totals_accumulate_per_thread() {
        let before = tls::snapshot();
        tls::add_overlap_probes(7);
        tls::add_overlap_build_nanos(100);
        let delta = tls::snapshot().delta_since(&before);
        assert_eq!(delta.overlap_probes, 7);
        assert_eq!(delta.overlap_build_nanos, 100);
        // Another thread's totals are independent.
        let handle = std::thread::spawn(|| {
            let before = tls::snapshot();
            tls::add_overlap_probes(1);
            tls::snapshot().delta_since(&before).overlap_probes
        });
        assert_eq!(handle.join().unwrap(), 1);
        assert_eq!(tls::snapshot().delta_since(&before).overlap_probes, 7);
    }
}
