//! Serving-style mining: prepare a graph once, answer many sessions over the
//! shared handle — from several threads — and stream one run's events with a
//! deadline, the way a request handler would.
//!
//! Run with: `cargo run --example streaming_service`

use ffsm::core::MeasureKind;
use ffsm::graph::datasets;
use ffsm::miner::{MiningEvent, MiningSession, PreparedGraph};
use std::time::Duration;

fn main() {
    // One-time preprocessing: load/build the graph and prepare it.  The matching
    // index is built lazily on first use and then shared by every session below.
    let dataset = datasets::chemical_like(60, 7);
    let prepared = PreparedGraph::new(dataset.graph);
    println!(
        "prepared graph: {} vertices, {} edges, {} labels (index builds so far: {})",
        prepared.graph().num_vertices(),
        prepared.graph().num_edges(),
        prepared.alphabet().len(),
        prepared.index_build_count(),
    );

    // Concurrent "requests": different measures, one shared PreparedGraph.
    // Sessions are owned and Send, so each runs on its own thread.
    let answers: [(MeasureKind, usize); 3] = std::thread::scope(|scope| {
        [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mis]
            .map(|measure| {
                let prepared = prepared.clone();
                scope.spawn(move || {
                    let result = MiningSession::over(&prepared)
                        .measure(measure)
                        .min_support(8.0)
                        .max_edges(2)
                        .run()
                        .expect("valid session");
                    (measure, result.len())
                })
            })
            .map(|handle| handle.join().expect("request thread panicked"))
    });
    for (measure, count) in answers {
        println!("{measure}: {count} frequent patterns at tau = 8");
    }
    println!("index builds after three concurrent sessions: {}", prepared.index_build_count());

    // A streaming request with a latency budget: events arrive as they happen,
    // and the typed completion says exactly how the run ended.
    let stream = MiningSession::over(&prepared)
        .min_support(6.0)
        .max_edges(3)
        .deadline(Duration::from_secs(5))
        .stream()
        .expect("valid session");
    for event in stream {
        match event.expect("in-process streams never error") {
            MiningEvent::Pattern(p) => {
                println!("  pattern: {} edges, support {}", p.pattern.num_edges(), p.support)
            }
            MiningEvent::LevelCompleted(level) => println!(
                "  level {} done: {} evaluated, {} accepted",
                level.level, level.evaluated, level.accepted
            ),
            MiningEvent::Undecided(u) => println!(
                "  undecided: {} edges, support in [{}, {}]",
                u.pattern.num_edges(),
                u.interval.lo,
                u.interval.hi
            ),
            MiningEvent::Finished(summary) => println!(
                "  finished: {} ({} patterns in {:?})",
                summary.completion, summary.num_patterns, summary.stats.elapsed
            ),
        }
    }
}
