//! Frequent-substructure mining in a chemical-compound-like graph — the classic
//! motivating workload for single-graph frequent pattern mining.
//!
//! The example mines the same graph with MNI (fast but over-counting) and MI
//! (fast *and* topology-aware) and shows how the reported pattern sets differ.
//!
//! Run with: `cargo run --release --example molecule_mining`

use ffsm::core::measures::MeasureKind;
use ffsm::graph::datasets;
use ffsm::graph::io::to_lg_string;
use ffsm::miner::MiningSession;

fn main() {
    let dataset = datasets::chemical_like(60, 2024);
    println!("{}", dataset.description);

    let tau = 20.0;
    for measure in [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc] {
        let result = MiningSession::on(&dataset.graph)
            .measure(measure)
            .min_support(tau)
            .max_edges(4)
            .run()
            .expect("valid session");
        println!("\n=== measure {measure} | tau = {tau} ===");
        println!(
            "{} frequent patterns ({} candidates evaluated, {} pruned, {:?})",
            result.len(),
            result.stats.candidates_evaluated,
            result.stats.candidates_pruned,
            result.stats.elapsed
        );
        // Print the largest frequent patterns (most informative substructures).
        let mut patterns = result.patterns.clone();
        patterns.sort_by(|a, b| {
            b.pattern
                .num_edges()
                .cmp(&a.pattern.num_edges())
                .then(b.support.partial_cmp(&a.support).unwrap())
        });
        for fp in patterns.iter().take(3) {
            println!(
                "--- pattern with {} edges, support {:.0}, {} occurrences:",
                fp.pattern.num_edges(),
                fp.support,
                fp.num_occurrences
            );
            print!("{}", to_lg_string(&fp.pattern));
        }
    }
    println!("\nBecause σMVC ≤ σMI ≤ σMNI, every MVC-frequent pattern is also MI-frequent and MNI-frequent.");
}
