//! Classic graph algorithms over [`LabeledGraph`].
//!
//! These are used throughout the workspace:
//!
//! * the dataset generators and the experiment harness report structural statistics
//!   (diameter, clustering, k-cores) so EXPERIMENTS.md can characterise each workload;
//! * the miner uses [`bfs_distances`] and [`connected_components`] to restrict
//!   candidate extension to reachable structure;
//! * the triangle / clustering routines power the "overlap-heavy vs overlap-light"
//!   classification of data graphs in the evaluation (overlap-heavy graphs are where
//!   MNI over-estimates most).
//!
//! All algorithms are deterministic and allocation-conscious: breadth-first searches
//! reuse a single `Vec` frontier, and neighbourhood intersections exploit the sorted
//! adjacency lists of [`LabeledGraph`].

use crate::{LabeledGraph, VertexId};

/// Breadth-first distances from `source`; unreachable vertices get `usize::MAX`.
pub fn bfs_distances(graph: &LabeledGraph, source: VertexId) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut dist = vec![usize::MAX; n];
    if (source as usize) >= n {
        return dist;
    }
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut level = 0usize;
    while !frontier.is_empty() {
        level += 1;
        next.clear();
        for &v in &frontier {
            for &w in graph.neighbors(v) {
                if dist[w as usize] == usize::MAX {
                    dist[w as usize] = level;
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    dist
}

/// Breadth-first shortest path from `source` to `target` as a vertex sequence, or
/// `None` if `target` is unreachable.
pub fn shortest_path(
    graph: &LabeledGraph,
    source: VertexId,
    target: VertexId,
) -> Option<Vec<VertexId>> {
    let n = graph.num_vertices();
    if (source as usize) >= n || (target as usize) >= n {
        return None;
    }
    if source == target {
        return Some(vec![source]);
    }
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[source as usize] = true;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    while !frontier.is_empty() {
        next.clear();
        for &v in &frontier {
            for &w in graph.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parent[w as usize] = Some(v);
                    if w == target {
                        // Reconstruct.
                        let mut path = vec![target];
                        let mut cur = target;
                        while let Some(p) = parent[cur as usize] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    None
}

/// Eccentricity of `source`: the largest finite BFS distance from it.
/// Returns 0 for an isolated vertex.
pub fn eccentricity(graph: &LabeledGraph, source: VertexId) -> usize {
    bfs_distances(graph, source).into_iter().filter(|&d| d != usize::MAX).max().unwrap_or(0)
}

/// Exact diameter (largest eccentricity over all vertices) of the graph, ignoring
/// unreachable pairs.  Quadratic in the number of vertices — use
/// [`estimate_diameter`] for large graphs.
pub fn diameter(graph: &LabeledGraph) -> usize {
    graph.vertices().map(|v| eccentricity(graph, v)).max().unwrap_or(0)
}

/// Lower-bound estimate of the diameter by a fixed number of double-sweep BFS passes
/// (each pass runs BFS from the farthest vertex found by the previous pass).
pub fn estimate_diameter(graph: &LabeledGraph, sweeps: usize) -> usize {
    let n = graph.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut best = 0usize;
    let mut start: VertexId = 0;
    for _ in 0..sweeps.max(1) {
        let dist = bfs_distances(graph, start);
        let (far, d) = dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != usize::MAX)
            .max_by_key(|(_, &d)| d)
            .map(|(i, &d)| (i as VertexId, d))
            .unwrap_or((start, 0));
        best = best.max(d);
        if far == start {
            break;
        }
        start = far;
    }
    best
}

/// Vertex sets of the connected components, each sorted, ordered by their smallest
/// vertex.
pub fn connected_components(graph: &LabeledGraph) -> Vec<Vec<VertexId>> {
    let n = graph.num_vertices();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start as VertexId];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &w in graph.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// The largest connected component as an induced subgraph, together with the map from
/// new vertex ids back to the original ids.  Returns an empty graph for an empty input.
pub fn largest_component(graph: &LabeledGraph) -> (LabeledGraph, Vec<VertexId>) {
    let comps = connected_components(graph);
    match comps.into_iter().max_by_key(|c| c.len()) {
        Some(c) => graph.induced_subgraph(&c),
        None => (LabeledGraph::new(), Vec::new()),
    }
}

/// Number of triangles in the graph (each triangle counted once).
///
/// Uses the standard degree-ordered neighbour-intersection method: every edge is
/// charged to its lower-degree endpoint, so the running time is `O(m · α)` where `α`
/// is the graph arboricity.
pub fn triangle_count(graph: &LabeledGraph) -> usize {
    let n = graph.num_vertices();
    // rank[v] orders vertices by (degree, id) — intersections only look "forward".
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_by_key(|&v| (graph.degree(v), v));
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }
    let mut count = 0usize;
    for v in graph.vertices() {
        // forward neighbours of v
        let fwd_v: Vec<VertexId> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| rank[w as usize] > rank[v as usize])
            .collect();
        for (i, &a) in fwd_v.iter().enumerate() {
            for &b in &fwd_v[i + 1..] {
                if graph.has_edge(a, b) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Number of triangles through vertex `v`.
pub fn triangles_at(graph: &LabeledGraph, v: VertexId) -> usize {
    let ns = graph.neighbors(v);
    let mut count = 0usize;
    for (i, &a) in ns.iter().enumerate() {
        for &b in &ns[i + 1..] {
            if graph.has_edge(a, b) {
                count += 1;
            }
        }
    }
    count
}

/// Local clustering coefficient of `v`: triangles through `v` divided by the number of
/// neighbour pairs.  Vertices of degree < 2 have coefficient 0.
pub fn local_clustering(graph: &LabeledGraph, v: VertexId) -> f64 {
    let d = graph.degree(v);
    if d < 2 {
        return 0.0;
    }
    let possible = d * (d - 1) / 2;
    triangles_at(graph, v) as f64 / possible as f64
}

/// Average local clustering coefficient over all vertices (0 for an empty graph).
pub fn average_clustering(graph: &LabeledGraph) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    graph.vertices().map(|v| local_clustering(graph, v)).sum::<f64>() / n as f64
}

/// Global clustering coefficient (transitivity): `3 * triangles / open-or-closed
/// wedges`.  0 when the graph has no wedge.
pub fn global_clustering(graph: &LabeledGraph) -> f64 {
    let wedges: usize = graph
        .vertices()
        .map(|v| {
            let d = graph.degree(v);
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangle_count(graph) as f64 / wedges as f64
    }
}

/// Core number of every vertex (the largest `k` such that the vertex belongs to the
/// `k`-core), computed by the standard peeling algorithm in `O(n + m)`.
pub fn core_numbers(graph: &LabeledGraph) -> Vec<usize> {
    // Batagelj–Zaversnik peeling: process vertices in increasing current-degree order,
    // fixing each vertex's core number to its degree at removal time and lowering the
    // degrees of its unprocessed neighbours.
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    let max_deg = *degree.iter().max().unwrap_or(&0);
    // bins[d] = index of the first vertex of degree d in `order`.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d + 1] += 1;
    }
    for d in 1..bins.len() {
        bins[d] += bins[d - 1];
    }
    let mut next_slot = bins.clone();
    let mut pos = vec![0usize; n];
    let mut order = vec![0 as VertexId; n];
    for v in 0..n {
        pos[v] = next_slot[degree[v]];
        order[pos[v]] = v as VertexId;
        next_slot[degree[v]] += 1;
    }
    let mut core = vec![0usize; n];
    let mut processed = vec![false; n];
    for i in 0..n {
        let v = order[i] as usize;
        processed[v] = true;
        core[v] = degree[v];
        for &w in graph.neighbors(v as VertexId) {
            let w = w as usize;
            if !processed[w] && degree[w] > degree[v] {
                // Swap w with the first vertex of its degree bucket, then shrink it
                // into the next lower bucket.
                let dw = degree[w];
                let pw = pos[w];
                let first = bins[dw];
                let u = order[first] as usize;
                if u != w {
                    order.swap(pw, first);
                    pos[w] = first;
                    pos[u] = pw;
                }
                bins[dw] += 1;
                degree[w] -= 1;
            }
        }
    }
    core
}

/// Degeneracy of the graph: the maximum core number (0 for an empty graph).
pub fn degeneracy(graph: &LabeledGraph) -> usize {
    core_numbers(graph).into_iter().max().unwrap_or(0)
}

/// A degeneracy ordering: vertices listed so that every vertex has at most
/// `degeneracy` neighbours appearing later in the order.  Produced by repeatedly
/// removing a minimum-degree vertex.
pub fn degeneracy_ordering(graph: &LabeledGraph) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut degree: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| (degree[v], v))
            .expect("vertex remains");
        removed[v] = true;
        order.push(v as VertexId);
        for &w in graph.neighbors(v as VertexId) {
            if !removed[w as usize] {
                degree[w as usize] -= 1;
            }
        }
    }
    order
}

/// `true` if the graph is bipartite (2-colourable); the empty graph is bipartite.
pub fn is_bipartite(graph: &LabeledGraph) -> bool {
    bipartition(graph).is_some()
}

/// A 2-colouring of the graph (`colors[v] ∈ {0, 1}`), or `None` if the graph contains
/// an odd cycle.
pub fn bipartition(graph: &LabeledGraph) -> Option<Vec<u8>> {
    let n = graph.num_vertices();
    let mut color = vec![u8::MAX; n];
    for start in 0..n {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        let mut stack = vec![start as VertexId];
        while let Some(v) = stack.pop() {
            for &w in graph.neighbors(v) {
                if color[w as usize] == u8::MAX {
                    color[w as usize] = 1 - color[v as usize];
                    stack.push(w);
                } else if color[w as usize] == color[v as usize] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Greedy vertex colouring in degeneracy order; returns the colour of each vertex.
/// Uses at most `degeneracy + 1` colours.
pub fn greedy_coloring(graph: &LabeledGraph) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut color = vec![usize::MAX; n];
    // Colour in reverse degeneracy order for the degeneracy+1 guarantee.
    let mut order = degeneracy_ordering(graph);
    order.reverse();
    let mut used = Vec::new();
    for &v in &order {
        used.clear();
        for &w in graph.neighbors(v) {
            if color[w as usize] != usize::MAX {
                used.push(color[w as usize]);
            }
        }
        used.sort_unstable();
        used.dedup();
        let mut c = 0usize;
        for &u in &used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        color[v as usize] = c;
    }
    color
}

/// Number of colours used by [`greedy_coloring`].
pub fn greedy_chromatic_number(graph: &LabeledGraph) -> usize {
    greedy_coloring(graph).into_iter().map(|c| c + 1).max().unwrap_or(0)
}

/// Degree histogram: entry `i` is the number of vertices of degree `i`.
pub fn degree_histogram(graph: &LabeledGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    if graph.num_vertices() == 0 {
        hist.clear();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Label;

    fn path5() -> LabeledGraph {
        LabeledGraph::from_edges(&[0, 0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    fn two_triangles() -> LabeledGraph {
        LabeledGraph::from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path5();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = two_triangles();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[4], usize::MAX);
    }

    #[test]
    fn bfs_out_of_range_source() {
        let g = path5();
        assert!(bfs_distances(&g, 99).iter().all(|&d| d == usize::MAX));
    }

    #[test]
    fn shortest_path_reconstruction() {
        let g = path5();
        assert_eq!(shortest_path(&g, 0, 4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(shortest_path(&g, 3, 3), Some(vec![3]));
        let tt = two_triangles();
        assert_eq!(shortest_path(&tt, 0, 5), None);
        assert_eq!(shortest_path(&tt, 0, 99), None);
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = path5();
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
        assert_eq!(diameter(&g), 4);
        assert_eq!(diameter(&two_triangles()), 1);
        assert_eq!(diameter(&LabeledGraph::new()), 0);
    }

    #[test]
    fn diameter_estimate_is_lower_bound_and_tight_on_paths() {
        let g = path5();
        let est = estimate_diameter(&g, 4);
        assert!(est <= diameter(&g));
        assert_eq!(est, 4); // double sweep is exact on trees
        let grid = generators::grid(6, 6, 2);
        assert!(estimate_diameter(&grid, 4) <= diameter(&grid));
    }

    #[test]
    fn component_extraction() {
        let g = two_triangles();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4, 5]);
        let (largest, back) = largest_component(&g);
        assert_eq!(largest.num_vertices(), 3);
        assert_eq!(back.len(), 3);
        let (empty, _) = largest_component(&LabeledGraph::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_count(&two_triangles()), 2);
        assert_eq!(triangle_count(&path5()), 0);
        let k4 = crate::patterns::uniform_clique(4, Label(0));
        assert_eq!(triangle_count(&k4), 4);
        assert_eq!(triangles_at(&k4, 0), 3);
    }

    #[test]
    fn clustering_coefficients() {
        let k4 = crate::patterns::uniform_clique(4, Label(0));
        assert!((average_clustering(&k4) - 1.0).abs() < 1e-12);
        assert!((global_clustering(&k4) - 1.0).abs() < 1e-12);
        assert_eq!(average_clustering(&path5()), 0.0);
        assert_eq!(global_clustering(&path5()), 0.0);
        assert_eq!(average_clustering(&LabeledGraph::new()), 0.0);
        // A wedge closed into a triangle plus a pendant edge.
        let g = LabeledGraph::from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert!(local_clustering(&g, 2) > 0.0 && local_clustering(&g, 2) < 1.0);
        assert_eq!(local_clustering(&g, 3), 0.0);
    }

    #[test]
    fn core_numbers_on_known_graphs() {
        let k4 = crate::patterns::uniform_clique(4, Label(0));
        assert_eq!(core_numbers(&k4), vec![3, 3, 3, 3]);
        assert_eq!(degeneracy(&k4), 3);
        assert_eq!(degeneracy(&path5()), 1);
        // Triangle with a pendant: pendant has core 1, triangle vertices core 2.
        let g = LabeledGraph::from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let cores = core_numbers(&g);
        assert_eq!(cores[3], 1);
        assert_eq!(cores[0], 2);
        assert_eq!(cores[1], 2);
        assert_eq!(cores[2], 2);
        assert!(core_numbers(&LabeledGraph::new()).is_empty());
    }

    #[test]
    fn degeneracy_ordering_property() {
        let g = generators::barabasi_albert(120, 3, 4, 5);
        let order = degeneracy_ordering(&g);
        assert_eq!(order.len(), g.num_vertices());
        let d = degeneracy(&g);
        let pos: std::collections::HashMap<VertexId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for &v in &order {
            let later = g.neighbors(v).iter().filter(|&&w| pos[&w] > pos[&v]).count();
            assert!(later <= d, "vertex {v} has {later} later neighbours > degeneracy {d}");
        }
    }

    #[test]
    fn bipartite_detection() {
        assert!(is_bipartite(&path5()));
        assert!(!is_bipartite(&two_triangles()));
        assert!(is_bipartite(&LabeledGraph::new()));
        let even_cycle = crate::patterns::cycle(&[Label(0); 4]);
        assert!(is_bipartite(&even_cycle));
        let colors = bipartition(&even_cycle).unwrap();
        for (u, v) in even_cycle.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
        let odd_cycle = crate::patterns::cycle(&[Label(0); 5]);
        assert!(bipartition(&odd_cycle).is_none());
    }

    #[test]
    fn greedy_coloring_is_proper_and_bounded() {
        let g = generators::gnm_random(100, 300, 3, 17);
        let colors = greedy_coloring(&g);
        for (u, v) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
        assert!(greedy_chromatic_number(&g) <= degeneracy(&g) + 1);
        assert_eq!(greedy_chromatic_number(&LabeledGraph::new()), 0);
    }

    #[test]
    fn degree_histogram_shape() {
        let g = path5();
        // Two endpoints of degree 1, three inner vertices of degree 2.
        assert_eq!(degree_histogram(&g), vec![0, 2, 3]);
        assert!(degree_histogram(&LabeledGraph::new()).is_empty());
        let star = crate::patterns::uniform_star(4, Label(0), Label(1));
        assert_eq!(degree_histogram(&star), vec![0, 4, 0, 0, 1]);
    }
}
