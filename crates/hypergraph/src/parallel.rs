//! Deterministic row-partitioned pair emission, shared by the indexed overlap-graph
//! builders (the hypergraph's own and `ffsm-core`'s per-notion builder).

/// Run `emit` over `0..m` split into `threads` contiguous chunks (`1` = sequential,
/// `0` = one worker per available core) and concatenate the outputs in chunk order.
/// The partition and merge order are fixed, so the result is independent of the
/// thread count — the same determinism contract as the mining engine's level
/// parallelism.
pub fn emit_pairs_parallel(
    m: usize,
    threads: usize,
    emit: impl Fn(std::ops::Range<usize>, &mut Vec<(usize, usize)>) + Sync,
) -> Vec<(usize, usize)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    let workers = threads.min(m.max(1));
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    if workers <= 1 {
        emit(0..m, &mut pairs);
        return pairs;
    }
    let chunk = m.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let rows = (w * chunk)..((w + 1) * chunk).min(m);
            let emit = &emit;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                emit(rows, &mut out);
                out
            }));
        }
        for handle in handles {
            pairs.extend(handle.join().expect("overlap worker panicked"));
        }
    });
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_squares(rows: std::ops::Range<usize>, out: &mut Vec<(usize, usize)>) {
        for i in rows {
            out.push((i, i * i));
        }
    }

    #[test]
    fn chunked_output_matches_sequential_for_any_thread_count() {
        let sequential = emit_pairs_parallel(23, 1, emit_squares);
        assert_eq!(sequential.len(), 23);
        for threads in [2, 3, 8, 64, 0] {
            assert_eq!(emit_pairs_parallel(23, threads, emit_squares), sequential, "x{threads}");
        }
    }

    #[test]
    fn empty_range_is_fine() {
        assert!(emit_pairs_parallel(0, 4, emit_squares).is_empty());
    }
}
