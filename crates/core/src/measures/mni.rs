//! The minimum-image-based support measures MNI and MNI-k.
//!
//! σMNI(P, G) = min over pattern nodes v of the number of *distinct* data vertices
//! that v is mapped to across all occurrences (Definition 2.2.8).  It is
//! anti-monotonic and computable in time linear in the number of occurrences, but it
//! ignores the pattern's topology entirely, which is what the paper's MI measure
//! repairs.
//!
//! σMNI(P, G, k) (Definition 2.2.9) generalises the per-node image count to connected
//! node subsets of size `k`, counted as *sets* of images.

use crate::occurrences::OccurrenceSet;
use ffsm_graph::VertexId;

/// Minimum-image-based support (Definition 2.2.8).
///
/// Returns 0 when the pattern has no occurrences (and, by convention, when the
/// pattern has no nodes).
pub fn mni(occurrences: &OccurrenceSet) -> usize {
    let pattern = occurrences.pattern();
    if occurrences.num_occurrences() == 0 || pattern.num_vertices() == 0 {
        return 0;
    }
    pattern.vertices().map(|v| occurrences.node_images(v).len()).min().unwrap_or(0)
}

/// Minimum k-image-based support (Definition 2.2.9): the minimum, over *connected*
/// node subsets `V'` of size `k`, of the number of distinct image sets `{f_i(V')}`.
///
/// If the pattern has no connected subset of `k` nodes (e.g. `k` exceeds the pattern
/// size), the whole vertex set is used instead, making the value well defined for
/// every `k ≥ 1`.
pub fn mni_k(occurrences: &OccurrenceSet, k: usize) -> usize {
    let pattern = occurrences.pattern();
    let n = pattern.num_vertices();
    if occurrences.num_occurrences() == 0 || n == 0 || k == 0 {
        return 0;
    }
    let subsets = connected_subsets_of_size(occurrences, k.min(n));
    let candidates: Vec<Vec<VertexId>> =
        if subsets.is_empty() { vec![pattern.vertices().collect()] } else { subsets };
    candidates.iter().map(|s| occurrences.subset_image_count(s)).min().unwrap_or(0)
}

/// All connected node subsets of the pattern with exactly `k` vertices
/// (connectivity in the subgraph induced by the subset).
pub(crate) fn connected_subsets_of_size(
    occurrences: &OccurrenceSet,
    k: usize,
) -> Vec<Vec<VertexId>> {
    let pattern = occurrences.pattern();
    let n = pattern.num_vertices();
    if k == 0 || k > n {
        return Vec::new();
    }
    if n > 20 {
        // Patterns are tiny in practice; guard against pathological inputs.
        return vec![pattern.vertices().collect()];
    }
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        if mask.count_ones() as usize != k {
            continue;
        }
        let subset: Vec<VertexId> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
        let (sub, _) = pattern.induced_subgraph(&subset);
        if sub.is_connected() {
            out.push(subset);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::isomorphism::IsoConfig;
    use ffsm_graph::{figures, patterns, Label, LabeledGraph};

    fn occ_of(example: &ffsm_graph::figures::FigureExample) -> OccurrenceSet {
        OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default())
    }

    #[test]
    fn figure2_mni_is_three() {
        assert_eq!(mni(&occ_of(&figures::figure2())), 3);
    }

    #[test]
    fn figure4_mni_is_two() {
        assert_eq!(mni(&occ_of(&figures::figure4())), 2);
    }

    #[test]
    fn figure6_mni_is_four() {
        assert_eq!(mni(&occ_of(&figures::figure6())), 4);
    }

    #[test]
    fn no_occurrences_gives_zero() {
        let pattern = patterns::single_edge(Label(5), Label(6));
        let graph = LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
        assert_eq!(mni(&occ), 0);
        assert_eq!(mni_k(&occ, 2), 0);
    }

    #[test]
    fn mni_k_with_k1_equals_mni() {
        for example in [figures::figure2(), figures::figure4(), figures::figure6()] {
            let occ = occ_of(&example);
            assert_eq!(mni_k(&occ, 1), mni(&occ), "{}", example.name);
        }
    }

    #[test]
    fn mni_k_specific_values() {
        // Figure 4: the {v2,v3} pair has a single image set, the full path has two.
        let occ = occ_of(&figures::figure4());
        assert_eq!(mni_k(&occ, 2), 1);
        assert_eq!(mni_k(&occ, 3), 2);
        // Figure 2 (triangle): every k-subset image collapses onto {1,2,3}-subsets.
        let occ2 = occ_of(&figures::figure2());
        assert_eq!(mni_k(&occ2, 2), 3);
        assert_eq!(mni_k(&occ2, 3), 1);
        // Every MNI-k value is bounded by the occurrence count.
        for example in [figures::figure2(), figures::figure4(), figures::figure9()] {
            let occ = occ_of(&example);
            for k in 1..=occ.pattern().num_vertices() {
                assert!(mni_k(&occ, k) <= occ.num_occurrences());
            }
        }
    }

    #[test]
    fn figure2_mni_k_full_pattern_counts_instances() {
        // For the triangle, the image of the full node set is always {1,2,3}: one set.
        let occ = occ_of(&figures::figure2());
        assert_eq!(mni_k(&occ, 3), 1);
    }

    #[test]
    fn oversized_k_falls_back_to_full_pattern() {
        let occ = occ_of(&figures::figure4());
        assert_eq!(mni_k(&occ, 10), mni_k(&occ, occ.pattern().num_vertices()));
        assert_eq!(mni_k(&occ, 0), 0);
    }

    #[test]
    fn connected_subsets_enumeration() {
        let occ = occ_of(&figures::figure4()); // path of three nodes
        let s1 = connected_subsets_of_size(&occ, 1);
        assert_eq!(s1.len(), 3);
        let s2 = connected_subsets_of_size(&occ, 2);
        // Only the two path edges are connected pairs.
        assert_eq!(s2.len(), 2);
        let s3 = connected_subsets_of_size(&occ, 3);
        assert_eq!(s3.len(), 1);
        assert!(connected_subsets_of_size(&occ, 4).is_empty());
    }
}
