//! Workload definitions shared by the experiment harness and the Criterion benches.
//!
//! Each workload is deterministic (seeded) so that every run of `experiments` or
//! `cargo bench` measures the same inputs.

use ffsm_core::occurrences::OccurrenceSet;
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_graph::{datasets, generators, patterns, Label, LabeledGraph, Pattern};

/// A named query pattern.
#[derive(Debug, Clone)]
pub struct NamedPattern {
    /// Short name used in tables (e.g. `"triangle"`).
    pub name: String,
    /// The pattern.
    pub pattern: Pattern,
}

impl NamedPattern {
    fn new(name: &str, pattern: Pattern) -> Self {
        NamedPattern { name: name.to_string(), pattern }
    }
}

/// The standard query-pattern suite used by the value-spectrum experiments (E3):
/// shapes of growing size over a small label alphabet, chosen so that each shape
/// actually occurs in the standard datasets.
pub fn pattern_suite() -> Vec<NamedPattern> {
    vec![
        NamedPattern::new("edge(0-0)", patterns::single_edge(Label(0), Label(0))),
        NamedPattern::new("edge(0-1)", patterns::single_edge(Label(0), Label(1))),
        NamedPattern::new("path3(0-0-0)", patterns::uniform_path(3, Label(0))),
        NamedPattern::new("path3(0-1-0)", patterns::path(&[Label(0), Label(1), Label(0)])),
        NamedPattern::new("star3(0;1)", patterns::uniform_star(3, Label(0), Label(1))),
        NamedPattern::new("triangle(0,0,0)", patterns::uniform_clique(3, Label(0))),
        NamedPattern::new("path4(0-0-0-0)", patterns::uniform_path(4, Label(0))),
        NamedPattern::new(
            "cycle4(0,1,0,1)",
            patterns::cycle(&[Label(0), Label(1), Label(0), Label(1)]),
        ),
    ]
}

/// The standard data-graph suite (domain-flavoured synthetic graphs, DESIGN.md §5).
pub fn dataset_suite(seed: u64) -> Vec<datasets::Dataset> {
    datasets::standard_suite(seed)
}

/// A reduced data-graph suite for quick runs and benches.
pub fn small_dataset_suite(seed: u64) -> Vec<datasets::Dataset> {
    datasets::small_suite(seed)
}

/// The overlap-heavy workload of experiment E4: a `hubs × leaves` double star whose
/// single-edge pattern has `hubs · leaves` occurrences; the number of occurrences is
/// the independent variable of the runtime experiment.
pub fn star_overlap_workload(occurrences: usize) -> (LabeledGraph, Pattern) {
    // hubs * leaves = occurrences, keep the shape roughly square.
    let hubs = (occurrences as f64).sqrt().ceil() as usize;
    let leaves = occurrences.div_ceil(hubs.max(1));
    (
        generators::star_overlap(hubs.max(1), leaves.max(1)),
        patterns::single_edge(Label(0), Label(1)),
    )
}

/// The occurrence-count grid of the `overlap_scaling` bench (`BENCH_overlap.json`):
/// powers of two from 64 up to `max`, so successive points double the naive builder's
/// pair count and the log-log trajectory of naive vs. indexed is easy to read.
pub fn overlap_scaling_sizes(max: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut m = 64usize;
    while m <= max {
        sizes.push(m);
        m *= 2;
    }
    sizes
}

/// The candidate-pruning workload of the `match_scaling` bench: a 4-cycle pattern
/// `A-B-C-D-A` against a graph holding a few *real* cycles plus a large layered
/// **decoy block** — four layers of `layer_size` vertices labelled `A,B,C,D` with
/// complete bipartite edges `A–B`, `B–C`, `C–D` but **no** closing `D–A` edges.
///
/// The naive enumerator walks `Θ(layer_size⁴)` partial paths through the block
/// before each one fails to close; the candidate-space engine deletes the entire
/// block before searching (the decoy `A`/`D` layers fail the neighbour-label
/// fingerprint, and the refinement sweep then peels `B` and `C`).  The true
/// embedding count is exactly `real_cycles`: a 4-cycle over four distinct labels
/// has a unique occurrence per disjoint copy.
pub fn decoy_cycle_workload(layer_size: usize, real_cycles: usize) -> (LabeledGraph, Pattern) {
    let mut graph = LabeledGraph::with_capacity(4 * layer_size + 4 * real_cycles);
    // Decoy layers: vertex `layer * layer_size + i` has label `layer`.
    for layer in 0..4u32 {
        for _ in 0..layer_size {
            graph.add_vertex(Label(layer));
        }
    }
    let vertex = |layer: usize, i: usize| (layer * layer_size + i) as u32;
    for layer in 0..3 {
        for i in 0..layer_size {
            for j in 0..layer_size {
                graph.add_edge(vertex(layer, i), vertex(layer + 1, j)).expect("decoy edge");
            }
        }
    }
    // Real cycles, disjoint from the block and from each other.
    for _ in 0..real_cycles {
        let a = graph.add_vertex(Label(0));
        let b = graph.add_vertex(Label(1));
        let c = graph.add_vertex(Label(2));
        let d = graph.add_vertex(Label(3));
        for (u, v) in [(a, b), (b, c), (c, d), (d, a)] {
            graph.add_edge(u, v).expect("real cycle edge");
        }
    }
    (graph, patterns::cycle(&[Label(0), Label(1), Label(2), Label(3)]))
}

/// The embedding-heavy workload of the `match_scaling` thread sweep: `copies`
/// disjoint 4-cliques of one label, queried with the one-label triangle — every
/// copy contributes `4·3·2 = 24` embeddings and the root candidates split evenly
/// across workers, so the workload isolates parallel enumeration overhead.
pub fn dense_triangle_workload(copies: usize) -> (LabeledGraph, Pattern) {
    let clique = patterns::uniform_clique(4, Label(0));
    (generators::replicated(&clique, copies, false), patterns::uniform_clique(3, Label(0)))
}

/// The dense-community workload of the `match_scaling` bench: two equal random
/// communities of `community_size` vertices over only **two** labels, dense inside
/// (`p = 0.85`) and well-connected across (`p = 0.4`), queried with the
/// alternating-label 4-cycle `0-1-0-1`.
///
/// This is the matcher pathology the dense-graph fix targets: with two labels the
/// label filter prunes almost nothing, candidate sets stay at ~half the graph, and
/// at `community_size = 32` the average degree clears the hub-bitset gate
/// (`ffsm_match` builds adjacency bitsets for vertices of degree ≥ 32 in graphs of
/// ≤ 8192 vertices), so the word-parallel pool intersection — not the label
/// pruning — carries the search.  The seed fixed at `0xd5` keeps every run on the
/// same graph.
pub fn dense_community_workload(community_size: usize) -> (LabeledGraph, Pattern) {
    (
        generators::community_graph(2, community_size, 0.85, 0.4, 2, 0xd5),
        patterns::cycle(&[Label(0), Label(1), Label(0), Label(1)]),
    )
}

/// The layer-size grid of the `match_scaling` bench: doubling from 8 up to `max`.
pub fn match_scaling_sizes(max: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut m = 8usize;
    while m <= max {
        sizes.push(m);
        m *= 2;
    }
    sizes
}

/// Enumerate the occurrences of `pattern` in `graph` with a bounded budget (shared by
/// all experiments so values are comparable).
pub fn enumerate(pattern: &Pattern, graph: &LabeledGraph, max_embeddings: usize) -> OccurrenceSet {
    OccurrenceSet::enumerate(pattern, graph, IsoConfig::with_limit(max_embeddings))
}

/// An anti-monotonicity chain workload (E6): starting from a sampled edge of `graph`,
/// grow the pattern one edge at a time and return the chain of patterns (each a
/// subpattern of the next).
pub fn extension_chain(graph: &LabeledGraph, max_edges: usize, seed: u64) -> Vec<Pattern> {
    let mut chain = Vec::new();
    for edges in 1..=max_edges {
        if let Some((p, _)) = generators::sample_pattern(graph, edges, seed) {
            // `sample_pattern` with the same seed explores the same random walk, so
            // successive patterns are (weakly) nested; only keep strictly growing ones.
            if chain.last().map(|prev: &Pattern| p.num_edges() > prev.num_edges()).unwrap_or(true) {
                chain.push(p);
            }
        }
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_suite_is_well_formed() {
        let suite = pattern_suite();
        assert!(suite.len() >= 8);
        for p in &suite {
            assert!(p.pattern.num_edges() >= 1, "{} has no edges", p.name);
            assert!(p.pattern.is_connected(), "{} is disconnected", p.name);
        }
    }

    #[test]
    fn star_overlap_workload_has_requested_occurrences() {
        for target in [16usize, 100, 400] {
            let (g, p) = star_overlap_workload(target);
            let occ = enumerate(&p, &g, 1_000_000);
            assert!(occ.num_occurrences() >= target);
            assert!(occ.num_occurrences() <= target + 2 * (target as f64).sqrt() as usize + 2);
        }
    }

    #[test]
    fn overlap_scaling_sizes_double_up_to_the_cap() {
        assert_eq!(overlap_scaling_sizes(512), vec![64, 128, 256, 512]);
        assert_eq!(overlap_scaling_sizes(700), vec![64, 128, 256, 512]);
        assert!(overlap_scaling_sizes(32).is_empty());
    }

    #[test]
    fn decoy_cycle_workload_has_exactly_the_real_embeddings() {
        let (g, p) = decoy_cycle_workload(6, 5);
        assert_eq!(g.num_vertices(), 4 * 6 + 4 * 5);
        assert_eq!(g.num_edges(), 3 * 36 + 4 * 5);
        let occ = enumerate(&p, &g, 1_000_000);
        assert!(occ.is_complete());
        assert_eq!(occ.num_occurrences(), 5);
    }

    #[test]
    fn dense_triangle_workload_scales_linearly() {
        let (g, p) = dense_triangle_workload(7);
        let occ = enumerate(&p, &g, 1_000_000);
        assert_eq!(occ.num_occurrences(), 7 * 24);
    }

    #[test]
    fn dense_community_workload_is_dense_and_two_labeled() {
        let (g, p) = dense_community_workload(32);
        assert_eq!(g.num_vertices(), 64);
        // Average degree clears the hub-bitset gate of `ffsm_match` (>= 32).
        assert!(2 * g.num_edges() >= 32 * g.num_vertices(), "{} edges", g.num_edges());
        assert!((0..g.num_vertices() as u32).all(|v| g.label(v).0 < 2));
        assert_eq!(p.num_vertices(), 4);
        assert_eq!(p.num_edges(), 4);
        let occ = enumerate(&p, &g, 2_000_000);
        assert!(occ.is_complete());
        assert!(occ.num_occurrences() > 0);
    }

    #[test]
    fn match_scaling_sizes_double_up_to_the_cap() {
        assert_eq!(match_scaling_sizes(32), vec![8, 16, 32]);
        assert_eq!(match_scaling_sizes(40), vec![8, 16, 32]);
        assert!(match_scaling_sizes(4).is_empty());
    }

    #[test]
    fn extension_chain_is_growing() {
        let g = generators::barabasi_albert(120, 3, 3, 5);
        let chain = extension_chain(&g, 4, 9);
        assert!(!chain.is_empty());
        for w in chain.windows(2) {
            assert!(w[1].num_edges() > w[0].num_edges());
        }
    }

    #[test]
    fn dataset_suites_available() {
        assert_eq!(dataset_suite(1).len(), 4);
        assert_eq!(small_dataset_suite(1).len(), 4);
    }
}
