//! `overlap_bench` — the `overlap_scaling` workload behind `BENCH_overlap.json`.
//!
//! Scales the occurrence count of the overlap-heavy star workload (experiment E4)
//! and times overlap-graph construction three ways per notion: the retained naive
//! all-pairs oracle, the indexed (inverted-index) builder, and the indexed builder
//! with one worker per core.  Every timed build is cross-checked against the oracle's
//! edge count, so the bench doubles as an integration test of the equivalence.
//!
//! Usage: `overlap_bench [--max-occurrences N] [--out PATH]`
//! (defaults: 2048 occurrences, `BENCH_overlap.json` in the working directory).
//!
//! The JSON report is a flat list of entries (`occurrences`, `kind`, `edges`,
//! `naive_us`, `indexed_us`, `parallel_us`, `speedup`) consumed by the CI artifact
//! upload; future PRs extend the trajectory rather than reformatting it.

use ffsm_bench::report::{json_string, Table};
use ffsm_bench::{flag_value, format_duration, timed, workloads};
use ffsm_core::{OccurrenceSet, OverlapAnalysis, OverlapKind};
use ffsm_graph::isomorphism::IsoConfig;
use std::time::Duration;

struct Entry {
    occurrences: usize,
    kind: OverlapKind,
    edges: usize,
    naive: Duration,
    indexed: Duration,
    parallel: Duration,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.naive.as_secs_f64() / self.indexed.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"occurrences\": {}, \"kind\": {}, \"edges\": {}, \"naive_us\": {}, \
             \"indexed_us\": {}, \"parallel_us\": {}, \"speedup\": {:.2}}}",
            self.occurrences,
            json_string(&self.kind.name()),
            self.edges,
            self.naive.as_micros(),
            self.indexed.as_micros(),
            self.parallel.as_micros(),
            self.speedup()
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max: usize = flag_value(&args, "--max-occurrences")
        .map(|v| v.parse().expect("--max-occurrences expects a number"))
        .unwrap_or(2048);
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_overlap.json").to_string();

    let mut entries: Vec<Entry> = Vec::new();
    let mut table = Table::new(
        "overlap_scaling: naive vs indexed overlap-graph construction",
        &["occurrences", "kind", "edges", "naive", "indexed", "parallel", "speedup"],
    );
    for target in workloads::overlap_scaling_sizes(max) {
        let (graph, pattern) = workloads::star_overlap_workload(target);
        let occurrences = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
        let analysis = OverlapAnalysis::new(&occurrences);
        // Warm the lazily-built inverted index (and report its cost separately), so
        // the per-kind timings below compare builders, not one-time index setup.
        let (_, index_time) = timed(|| analysis.overlap_graph_indexed(OverlapKind::Simple));
        eprintln!(
            "index warm-up at {} occurrences: {}",
            occurrences.num_occurrences(),
            format_duration(index_time)
        );
        for kind in [OverlapKind::Simple, OverlapKind::Structural] {
            let (naive_graph, naive) = timed(|| analysis.overlap_graph_naive(kind));
            let (indexed_graph, indexed) = timed(|| analysis.overlap_graph_indexed(kind));
            let (parallel_graph, parallel) = timed(|| analysis.overlap_graph_parallel(kind, 0));
            assert_eq!(
                indexed_graph.num_edges(),
                naive_graph.num_edges(),
                "indexed builder diverged from the oracle ({kind}, {target} occurrences)"
            );
            assert_eq!(
                parallel_graph.num_edges(),
                naive_graph.num_edges(),
                "parallel builder diverged from the oracle ({kind}, {target} occurrences)"
            );
            let entry = Entry {
                occurrences: occurrences.num_occurrences(),
                kind,
                edges: naive_graph.num_edges(),
                naive,
                indexed,
                parallel,
            };
            table.add_row(vec![
                entry.occurrences.to_string(),
                kind.name(),
                entry.edges.to_string(),
                format_duration(entry.naive),
                format_duration(entry.indexed),
                format_duration(entry.parallel),
                format!("{:.2}x", entry.speedup()),
            ]);
            entries.push(entry);
        }
    }
    table.print();

    let body: Vec<String> = entries.iter().map(|e| format!("    {}", e.to_json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"overlap_scaling\",\n  \"workload\": \"star_overlap(single edge)\",\n  \
         \"entries\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write perf report");
    println!("wrote {out_path} ({} entries)", entries.len());

    if let Some(largest) = entries.iter().max_by_key(|e| (e.occurrences, e.kind)) {
        assert!(
            largest.indexed < largest.naive,
            "indexed builder no faster than naive on the largest workload \
             ({:?} vs {:?} at {} occurrences)",
            largest.indexed,
            largest.naive,
            largest.occurrences
        );
    }
}
