//! Legacy level-parallel mining API, kept as a thin shim over
//! [`crate::MiningSession`] (use `.threads(k)` on a session instead).
//!
//! Because the engine's partition and merge order are fixed, the output is identical
//! to a sequential run (same patterns, same supports, same order per level).

#![allow(deprecated)]

use crate::session::{MiningBudget, MiningSession};
use crate::types::MiningResult;
use ffsm_core::{MeasureConfig, MeasureKind};
use ffsm_graph::LabeledGraph;

/// Configuration of a legacy parallel mining run.
#[deprecated(since = "0.2.0", note = "use `MiningSession::on(&graph).threads(k)` instead")]
#[derive(Debug, Clone)]
pub struct ParallelMinerConfig {
    /// Support threshold τ.
    pub min_support: f64,
    /// Which support measure to use.
    pub measure: MeasureKind,
    /// Measure configuration.
    pub measure_config: MeasureConfig,
    /// Stop growing patterns beyond this many edges.
    pub max_pattern_edges: usize,
    /// Number of worker threads (0 or 1 = sequential; values above the available
    /// parallelism are clamped).
    pub num_threads: usize,
    /// Safety cap on the number of support evaluations.
    pub max_evaluations: usize,
}

impl Default for ParallelMinerConfig {
    fn default() -> Self {
        ParallelMinerConfig {
            min_support: 2.0,
            measure: MeasureKind::Mni,
            measure_config: MeasureConfig::default(),
            max_pattern_edges: 4,
            num_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            max_evaluations: 100_000,
        }
    }
}

/// Run the legacy level-synchronous parallel miner.  Delegates to
/// [`crate::MiningSession`].
///
/// # Panics
///
/// Panics when the configuration is one the session API rejects — the legacy
/// signature has no error channel.
#[deprecated(since = "0.2.0", note = "use `MiningSession::on(&graph).threads(k)` instead")]
pub fn mine_parallel(graph: &LabeledGraph, config: &ParallelMinerConfig) -> MiningResult {
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = config.num_threads.min(available).max(1);
    MiningSession::on(graph)
        .measure(config.measure)
        .measure_config(config.measure_config.clone())
        .min_support(config.min_support)
        .max_edges(config.max_pattern_edges)
        .threads(threads)
        // The legacy parallel miner had no pattern cap, only the evaluation cap.
        .budget(MiningBudget { max_evaluations: config.max_evaluations, max_patterns: usize::MAX })
        .run()
        .expect("legacy ParallelMinerConfig produced an invalid session")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{Miner, MinerConfig};
    use ffsm_graph::canonical::canonical_code;
    use ffsm_graph::generators;

    fn workload() -> LabeledGraph {
        let triangle = ffsm_graph::LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        generators::replicated(&triangle, 5, true)
    }

    fn pattern_set(result: &MiningResult) -> std::collections::BTreeSet<Vec<u64>> {
        result.patterns.iter().map(|p| canonical_code(&p.pattern).as_slice().to_vec()).collect()
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let graph = workload();
        let tau = 5.0;
        let sequential = Miner::new(
            &graph,
            MinerConfig { min_support: tau, max_pattern_edges: 3, ..Default::default() },
        )
        .mine();
        let parallel = mine_parallel(
            &graph,
            &ParallelMinerConfig {
                min_support: tau,
                max_pattern_edges: 3,
                num_threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(pattern_set(&sequential), pattern_set(&parallel));
        assert_eq!(sequential.len(), parallel.len());
        // Supports agree pattern by pattern.
        for p in &parallel.patterns {
            let code = canonical_code(&p.pattern);
            let s = sequential
                .patterns
                .iter()
                .find(|q| canonical_code(&q.pattern) == code)
                .expect("pattern found by both miners");
            assert!((p.support - s.support).abs() < 1e-9);
        }
    }

    #[test]
    fn single_thread_config_still_works() {
        let graph = workload();
        let result = mine_parallel(
            &graph,
            &ParallelMinerConfig {
                min_support: 5.0,
                num_threads: 1,
                max_pattern_edges: 3,
                ..Default::default()
            },
        );
        assert!(result.patterns.iter().any(|p| p.pattern.num_edges() == 3));
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let graph = generators::community_graph(2, 10, 0.4, 0.05, 3, 9);
        let base = mine_parallel(
            &graph,
            &ParallelMinerConfig {
                min_support: 3.0,
                num_threads: 1,
                max_pattern_edges: 2,
                ..Default::default()
            },
        );
        for threads in [2, 3, 8] {
            let other = mine_parallel(
                &graph,
                &ParallelMinerConfig {
                    min_support: 3.0,
                    num_threads: threads,
                    max_pattern_edges: 2,
                    ..Default::default()
                },
            );
            assert_eq!(pattern_set(&base), pattern_set(&other), "threads = {threads}");
        }
    }

    #[test]
    fn evaluation_cap_truncates() {
        let graph = generators::gnm_random(60, 180, 2, 8);
        let result = mine_parallel(
            &graph,
            &ParallelMinerConfig { min_support: 1.0, max_evaluations: 4, ..Default::default() },
        );
        assert!(result.stats.truncated);
        assert!(result.stats.candidates_evaluated <= 4);
    }

    #[test]
    fn empty_graph_mines_nothing() {
        let result = mine_parallel(&LabeledGraph::new(), &ParallelMinerConfig::default());
        assert!(result.is_empty());
    }
}
