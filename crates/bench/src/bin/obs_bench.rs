//! `obs_bench` — the observability overhead gate behind `BENCH_obs.json`.
//!
//! The observability layer's hard contract is that it is (a) free when off and
//! (b) nearly free when on: counters are plain `u64` adds on thread-owned
//! arenas in both arms, and enabling `metrics` only adds the fine-grained
//! phase-timing clock reads (a few `Instant::now` pairs per candidate).  This
//! bench measures that contract on two workloads:
//!
//! * **dense_community_mine** — the matcher-pathology mining workload
//!   (`workloads::dense_community_workload`), mined with session metrics off vs
//!   on.  The arms run interleaved, min-of-K, so machine noise hits both
//!   equally; the bench also cross-checks that both arms report the same
//!   pattern count and search-step counter (the bit-for-bit identity proper
//!   lives in `tests/obs_differential.rs`).
//! * **serve_loopback** — a serial client driving mine requests against an
//!   in-process server with `session_metrics` off vs on, measuring end-to-end
//!   request wall time across the full stack.
//!
//! Acceptance gate: on both workloads the metrics-on arm must stay within 3%
//! of the metrics-off arm (plus a small absolute slack so micro-runs on noisy
//! CI machines cannot flake a sub-millisecond delta into a failure).
//!
//! Usage: `obs_bench [--community-size N] [--tau T] [--max-edges N]
//! [--rounds K] [--requests N] [--out PATH]` (defaults: community size 40,
//! tau 8, max-edges 2, 5 rounds, 20 requests, `BENCH_obs.json`).

use ffsm_bench::report::json_string;
use ffsm_bench::{flag_value, workloads};
use ffsm_core::MeasureKind;
use ffsm_graph::LabeledGraph;
use ffsm_miner::{MiningSession, PreparedGraph};
use ffsm_serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One timed mining run; returns wall time plus the invariants the two arms
/// must agree on (pattern count, total search steps).
fn mine_once(
    prepared: &PreparedGraph,
    tau: f64,
    max_edges: usize,
    metrics: bool,
) -> (Duration, usize, u64) {
    let start = Instant::now();
    let result = MiningSession::over(prepared)
        .measure(MeasureKind::Mni)
        .min_support(tau)
        .max_edges(max_edges)
        .metrics(metrics)
        .run()
        .expect("mine");
    (start.elapsed(), result.len(), result.stats.counters.search.steps)
}

/// One serve round: fresh server, one serial client, `requests` mine requests
/// after a warm-up request that pays the prepared-index build.  Returns the
/// wall time of the timed requests.
fn serve_round(graph: &LabeledGraph, session_metrics: bool, requests: usize, tau: f64) -> Duration {
    let config = ServerConfig { session_metrics, ..ServerConfig::default() };
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    server.registry().register("bench", graph.clone()).expect("register bench graph");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut run_request = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>| {
        writeln!(
            writer,
            "{{\"op\": \"mine\", \"graph\": \"bench\", \"tau\": {tau}, \"max_edges\": 2}}"
        )
        .expect("send request");
        loop {
            line.clear();
            if reader.read_line(&mut line).expect("read frame") == 0 {
                panic!("server hung up mid-conversation");
            }
            if line.starts_with("{\"event\": \"done\"") {
                assert!(line.contains("\"status\": \"complete\""), "mine failed: {line}");
                break;
            }
        }
    };
    run_request(&mut writer, &mut reader); // warm-up: builds the prepared index
    let start = Instant::now();
    for _ in 0..requests {
        run_request(&mut writer, &mut reader);
    }
    let elapsed = start.elapsed();
    handle.shutdown();
    server_thread.join().expect("server drains");
    elapsed
}

/// The gate: `on` within 3% of `off`, with `slack` of absolute headroom so a
/// noisy micro-delta cannot flake the build.
fn assert_overhead(workload: &str, off: Duration, on: Duration, slack: Duration) {
    let budget = Duration::from_nanos((off.as_nanos() as u64) * 3 / 100).max(slack);
    let overhead = on.saturating_sub(off);
    assert!(
        overhead <= budget,
        "{workload}: metrics-on {on:?} exceeds metrics-off {off:?} by {overhead:?} \
         (budget {budget:?}) — the observability layer is no longer ~free"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let community_size: usize = flag_value(&args, "--community-size")
        .map(|v| v.parse().expect("--community-size expects a number"))
        .unwrap_or(40);
    let tau: f64 = flag_value(&args, "--tau")
        .map(|v| v.parse().expect("--tau expects a number"))
        .unwrap_or(8.0);
    let max_edges: usize = flag_value(&args, "--max-edges")
        .map(|v| v.parse().expect("--max-edges expects a number"))
        .unwrap_or(2);
    let rounds: usize = flag_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds expects a number"))
        .unwrap_or(5);
    let requests: usize = flag_value(&args, "--requests")
        .map(|v| v.parse().expect("--requests expects a number"))
        .unwrap_or(20);
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_obs.json").to_string();

    // Workload 1: dense-community mining, metrics off vs on, interleaved.
    let (graph, _) = workloads::dense_community_workload(community_size);
    let prepared = PreparedGraph::new(graph);
    let (_, warm_patterns, warm_steps) = mine_once(&prepared, tau, max_edges, false);
    let mut mine_off = Duration::MAX;
    let mut mine_on = Duration::MAX;
    for _ in 0..rounds {
        let (off, off_patterns, off_steps) = mine_once(&prepared, tau, max_edges, false);
        let (on, on_patterns, on_steps) = mine_once(&prepared, tau, max_edges, true);
        assert_eq!((off_patterns, off_steps), (warm_patterns, warm_steps), "metrics-off drifted");
        assert_eq!((on_patterns, on_steps), (warm_patterns, warm_steps), "metrics-on diverged");
        mine_off = mine_off.min(off);
        mine_on = mine_on.min(on);
    }
    println!(
        "dense_community_mine (size {community_size}, tau {tau}, {warm_patterns} patterns, \
         {warm_steps} steps): metrics-off {mine_off:?}, metrics-on {mine_on:?}"
    );

    // Workload 2: loopback serving, per-session metrics off vs on, interleaved.
    let serve_graph = ffsm_graph::generators::gnm_random(800, 1_800, 6, 11);
    let serve_rounds = rounds.div_ceil(2);
    let mut serve_off = Duration::MAX;
    let mut serve_on = Duration::MAX;
    for _ in 0..serve_rounds {
        serve_off = serve_off.min(serve_round(&serve_graph, false, requests, 20.0));
        serve_on = serve_on.min(serve_round(&serve_graph, true, requests, 20.0));
    }
    println!(
        "serve_loopback ({requests} requests x {serve_rounds} rounds): \
         metrics-off {serve_off:?}, metrics-on {serve_on:?}"
    );

    let ratio = |on: Duration, off: Duration| on.as_secs_f64() / off.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"workloads\": [{}, {}],\n  \"entries\": [\n    \
         {{\"workload\": {}, \"community_size\": {community_size}, \"tau\": {tau}, \
         \"patterns\": {warm_patterns}, \"steps\": {warm_steps}, \
         \"metrics_off_us\": {}, \"metrics_on_us\": {}, \"overhead_ratio\": {:.4}}},\n    \
         {{\"workload\": {}, \"requests\": {requests}, \
         \"metrics_off_us\": {}, \"metrics_on_us\": {}, \"overhead_ratio\": {:.4}}}\n  ]\n}}\n",
        json_string("dense_community_mine"),
        json_string("serve_loopback"),
        json_string("dense_community_mine"),
        mine_off.as_micros(),
        mine_on.as_micros(),
        ratio(mine_on, mine_off),
        json_string("serve_loopback"),
        serve_off.as_micros(),
        serve_on.as_micros(),
        ratio(serve_on, serve_off),
    );
    std::fs::write(&out_path, json).expect("write perf report");
    println!("wrote {out_path}");

    // Acceptance gates: the ≤3% overhead contract, with absolute slack scaled
    // to each workload's noise floor (single-run mining vs a TCP round-trip
    // batch).
    assert_overhead("dense_community_mine", mine_off, mine_on, Duration::from_millis(2));
    assert_overhead("serve_loopback", serve_off, serve_on, Duration::from_millis(10));
}
