//! Differential test harness for the indexed overlap-graph pipeline.
//!
//! Two oracles anchor this file:
//!
//! * the retained naive all-pairs builder (`OverlapAnalysis::overlap_graph_naive`) —
//!   the indexed builder (sequential and parallel) must produce an *identical*
//!   overlap graph for every [`OverlapKind`] on proptest-generated pattern /
//!   data-graph pairs;
//! * the sequential mining engine — MIS, MVC, MNI and MI supports must agree
//!   bit-for-bit across the sequential, level-parallel and top-k
//!   [`MiningSession`] modes.
//!
//! The proptest shim seeds each generator deterministically from the test name, so
//! every run (locally and in CI) replays the same fixed case sequence.

use ffsm::core::measures::{MeasureConfig, MeasureKind, SupportMeasures};
use ffsm::core::occurrences::OccurrenceSet;
use ffsm::core::overlap::{OverlapAnalysis, OverlapBuild, OverlapConfig, OverlapKind};
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{generators, LabeledGraph};
use ffsm::hypergraph::independent_set::SimpleGraph;
use ffsm::miner::MiningSession;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Assert two overlap graphs are identical: same vertex count, same sorted
/// neighbour row for every vertex.
fn assert_same_graph(built: &SimpleGraph, oracle: &SimpleGraph, context: &str) -> TestCaseResult {
    prop_assert_eq!(built.num_vertices(), oracle.num_vertices(), "vertex count, {}", context);
    prop_assert_eq!(built.num_edges(), oracle.num_edges(), "edge count, {}", context);
    for v in 0..oracle.num_vertices() {
        prop_assert_eq!(built.neighbors(v), oracle.neighbors(v), "row {} of {}", v, context);
    }
    Ok(())
}

/// The frequent-pattern multiset of a mining run, keyed by canonical code, with the
/// exact support bits (`f64::to_bits`) as values — "bit-for-bit" agreement.
fn pattern_supports(
    graph: &LabeledGraph,
    kind: MeasureKind,
    tau: f64,
    threads: usize,
    top_k: Option<usize>,
) -> BTreeMap<String, u64> {
    let mut session =
        MiningSession::on(graph).measure(kind).min_support(tau).max_edges(2).threads(threads);
    if let Some(k) = top_k {
        session = session.top_k(k);
    }
    let result = session.run().expect("valid session");
    result
        .patterns
        .iter()
        .map(|p| (format!("{:?}", canonical_code(&p.pattern)), p.support.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Tentpole equivalence: for every overlap notion, the indexed builder —
    /// sequential, 3-thread and one-thread-per-core — produces exactly the graph the
    /// naive all-pairs oracle produces.
    #[test]
    fn indexed_builder_matches_naive_oracle(seed in 0u64..10_000, edges in 1usize..4) {
        let graph = generators::gnm_random(24, 60, 2, seed);
        let Some((pattern, _)) = generators::sample_pattern(&graph, edges, seed ^ 0xbeef) else {
            return Ok(());
        };
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::with_limit(200));
        prop_assume!(occ.num_occurrences() >= 2);
        let analysis = OverlapAnalysis::new(&occ);
        for kind in OverlapKind::all() {
            let oracle = analysis.overlap_graph_naive(kind);
            let context = format!("kind {kind}, seed {seed}, {edges}-edge pattern");
            assert_same_graph(&analysis.overlap_graph_indexed(kind), &oracle, &context)?;
            assert_same_graph(&analysis.overlap_graph_parallel(kind, 3), &oracle, &context)?;
            assert_same_graph(&analysis.overlap_graph_parallel(kind, 0), &oracle, &context)?;
            // The default (cached) path is the indexed one.
            assert_same_graph(&analysis.overlap_graph(kind), &oracle, &context)?;
        }
    }

    /// The naive strategy selected through the config produces the same cached
    /// graphs as the default indexed strategy.
    #[test]
    fn strategy_selection_is_observationally_equivalent(seed in 0u64..10_000) {
        let graph = generators::community_graph(2, 8, 0.5, 0.1, 2, seed);
        let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed ^ 0x51) else {
            return Ok(());
        };
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::with_limit(120));
        prop_assume!(occ.num_occurrences() >= 2);
        let indexed = OverlapAnalysis::new(&occ);
        let naive = OverlapAnalysis::with_config(
            &occ,
            OverlapConfig { build: OverlapBuild::Naive, threads: 1 },
        );
        for kind in OverlapKind::all() {
            assert_same_graph(&indexed.overlap_graph(kind), &naive.overlap_graph(kind),
                &format!("configured naive vs indexed, kind {kind}, seed {seed}"))?;
        }
    }

    /// MIS / MVC / MNI / MI supports agree bit-for-bit across the sequential,
    /// level-parallel and top-k mining modes.
    #[test]
    fn supports_agree_across_mining_modes(seed in 0u64..10_000) {
        let graph = generators::community_graph(2, 9, 0.45, 0.08, 3, seed);
        prop_assume!(graph.num_edges() >= 4);
        for kind in [MeasureKind::Mis, MeasureKind::Mvc, MeasureKind::Mni, MeasureKind::Mi] {
            let sequential = pattern_supports(&graph, kind, 2.0, 1, None);
            let parallel = pattern_supports(&graph, kind, 2.0, 4, None);
            prop_assert_eq!(&sequential, &parallel, "threads change {} results, seed {}",
                kind, seed);
            let all_cores = pattern_supports(&graph, kind, 2.0, 0, None);
            prop_assert_eq!(&sequential, &all_cores, "all-core run changes {} results, seed {}",
                kind, seed);
            // Top-k with k at least the number of frequent patterns and the same
            // floor must return exactly the threshold-mode pattern set.
            let k = sequential.len().max(1);
            let top_k = pattern_supports(&graph, kind, 2.0, 2, Some(k));
            prop_assert_eq!(&sequential, &top_k, "top-k diverges from threshold {} run, seed {}",
                kind, seed);
        }
    }
}

#[test]
fn overlap_cache_shares_builds_within_one_pattern() {
    let graph = generators::star_overlap(4, 6);
    let pattern = ffsm::graph::patterns::single_edge(ffsm::graph::Label(0), ffsm::graph::Label(1));
    let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
    assert!(occ.num_occurrences() >= 2);

    // MIS then MVC then MCP on one pattern: exactly one overlap-graph build.
    let measures = SupportMeasures::new(occ.clone(), MeasureConfig::default());
    assert_eq!(measures.overlap_builds(), 0);
    let mis = measures.mis();
    assert_eq!(measures.overlap_builds(), 1, "MIS builds the overlap graph once");
    let mvc = measures.mvc();
    assert_eq!(measures.overlap_builds(), 1, "MVC reuses the hypergraph, not a new overlap graph");
    let mcp = measures.mcp();
    assert_eq!(measures.overlap_builds(), 1, "MCP shares MIS's cached overlap graph");
    assert!(mis.value <= mvc.value && mis.value <= mcp.value);

    // Repeated queries stay cached; the relaxations add no overlap builds either.
    measures.mis();
    measures.relaxed_mvc();
    measures.relaxed_mies();
    assert_eq!(measures.overlap_builds(), 1);

    // A different pattern means a fresh calculator with an empty cache (per-level
    // invalidation is structural: the miner constructs a new evaluation per pattern).
    let path = ffsm::graph::patterns::uniform_path(3, ffsm::graph::Label(0));
    let occ2 = OccurrenceSet::enumerate(&path, &graph, IsoConfig::default());
    let fresh = SupportMeasures::new(occ2, MeasureConfig::default());
    assert_eq!(fresh.overlap_builds(), 0);
    fresh.mis();
    assert!(fresh.overlap_builds() <= 1);

    // The per-kind analysis cache behaves the same way.
    let analysis = OverlapAnalysis::new(&occ);
    assert_eq!(analysis.overlap_builds(), 0);
    analysis.mis_under(OverlapKind::Simple, ffsm::hypergraph::SearchBudget::default());
    analysis.mcp_under(OverlapKind::Simple, ffsm::hypergraph::SearchBudget::default());
    assert_eq!(analysis.overlap_builds(), 1, "MIS-under and MCP-under share one build");
    analysis.overlap_census();
    assert_eq!(analysis.overlap_builds(), 4, "census tops the cache up to all four notions");
}

#[test]
fn overlap_kind_cli_surface_round_trips() {
    // The bench/CLI select notions by name: Display output must parse back, unknown
    // names must produce the typed error.
    for kind in OverlapKind::all() {
        assert_eq!(kind.to_string().parse::<OverlapKind>().unwrap(), kind);
    }
    assert_eq!("Vertex".parse::<OverlapKind>().unwrap(), OverlapKind::Simple);
    assert!(matches!(
        "mystery".parse::<OverlapKind>(),
        Err(ffsm::core::FfsmError::UnknownOverlap(name)) if name == "mystery"
    ));
}
