//! The shard residency store: spill-to-disk, LRU reload, byte accounting.
//!
//! Shards are **immutable** after [`PartitionedGraph`](crate::PartitionedGraph)
//! builds them, so the store is a read-only cache: spilling writes each shard's
//! file exactly once, eviction is a pure drop, and a reload parses the file
//! back.  All bookkeeping sits behind one mutex — loads are rare (amortised
//! over a whole level of candidate evaluations) and the file I/O itself is the
//! cost that matters, so a finer-grained scheme would buy nothing.
//!
//! ### Shard file format (plain text, one shard per file)
//!
//! ```text
//! s <num_vertices> <num_edges>
//! v <label> <global_id>     # one per vertex, local ids implicit 0,1,2,…
//! e <u> <v>                 # one per edge, local ids, u < v
//! ```

use crate::partition::ResidentShard;
use ffsm_core::FfsmError;
use ffsm_graph::{Label, LabeledGraph, VertexId};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One scrape of the store's residency and load counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStoreStats {
    /// Shards reloaded from disk (cold fetches after eviction).
    pub loads: u64,
    /// Shards dropped to stay within `max_resident`.
    pub evictions: u64,
    /// Shards currently in memory.
    pub resident_shards: usize,
    /// Approximate bytes currently resident ([`ResidentShard::approx_bytes`]).
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` since the store was created or
    /// last spilled — the peak-RSS proxy the shard bench gates on.
    /// [`ShardStore::spill`] resets it to the post-eviction residency, so
    /// under a spilled configuration the value describes the out-of-core
    /// mining phase, not the all-resident build that necessarily preceded it.
    pub peak_resident_bytes: u64,
    /// Wall time spent parsing shard files, total.
    pub load_nanos: u64,
    /// `true` once [`ShardStore::spill`] has run.
    pub spilled: bool,
}

struct StoreState {
    slots: Vec<Option<Arc<ResidentShard>>>,
    /// Resident shard ids, least-recently-used at the front.
    lru: VecDeque<usize>,
    dir: Option<PathBuf>,
    max_resident: usize,
    resident_bytes: u64,
}

/// The residency manager behind [`PartitionedGraph`](crate::PartitionedGraph).
#[derive(Debug)]
pub struct ShardStore {
    state: Mutex<StoreState>,
    loads: AtomicU64,
    evictions: AtomicU64,
    peak_resident_bytes: AtomicU64,
    load_nanos: AtomicU64,
}

impl std::fmt::Debug for StoreState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreState")
            .field("resident", &self.lru)
            .field("max_resident", &self.max_resident)
            .field("resident_bytes", &self.resident_bytes)
            .finish()
    }
}

impl ShardStore {
    /// A store with every shard resident and no spill configured.
    pub(crate) fn resident(shards: Vec<ResidentShard>) -> Self {
        let k = shards.len();
        let mut bytes = 0u64;
        let slots: Vec<Option<Arc<ResidentShard>>> = shards
            .into_iter()
            .map(|s| {
                bytes += s.approx_bytes();
                Some(Arc::new(s))
            })
            .collect();
        ShardStore {
            state: Mutex::new(StoreState {
                slots,
                lru: (0..k).collect(),
                dir: None,
                max_resident: k.max(1),
                resident_bytes: bytes,
            }),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            peak_resident_bytes: AtomicU64::new(bytes),
            load_nanos: AtomicU64::new(0),
        }
    }

    /// Fetch shard `i`, reloading from its spill file when evicted.  Marks `i`
    /// most-recently-used and evicts down to `max_resident`.
    pub fn fetch(&self, i: usize) -> Result<Arc<ResidentShard>, FfsmError> {
        let mut st = self.state.lock().expect("shard store poisoned");
        if i >= st.slots.len() {
            return Err(FfsmError::Partition(format!(
                "shard index {i} out of range (have {} shards)",
                st.slots.len()
            )));
        }
        if let Some(arc) = &st.slots[i] {
            let arc = arc.clone();
            if let Some(pos) = st.lru.iter().position(|&x| x == i) {
                st.lru.remove(pos);
            }
            st.lru.push_back(i);
            return Ok(arc);
        }
        let dir = st.dir.clone().ok_or_else(|| {
            FfsmError::Partition(format!(
                "shard {i} is not resident and no spill directory is configured"
            ))
        })?;
        // Make room *before* the read: the victim is dropped before the
        // incoming shard's bytes land, so residency never exceeds the cap —
        // the peak under a spilled configuration is genuinely `max_resident`
        // shards, not cap-plus-one during each exchange.
        while st.lru.len() + 1 > st.max_resident {
            let victim = st.lru.pop_front().expect("len >= cap >= 1");
            if let Some(shard) = st.slots[victim].take() {
                st.resident_bytes = st.resident_bytes.saturating_sub(shard.approx_bytes());
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let start = Instant::now();
        let shard = read_shard_file(&shard_path(&dir, i))?;
        self.load_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.loads.fetch_add(1, Ordering::Relaxed);
        let bytes = shard.approx_bytes();
        let arc = Arc::new(shard);
        st.slots[i] = Some(arc.clone());
        st.lru.push_back(i);
        st.resident_bytes += bytes;
        self.peak_resident_bytes.fetch_max(st.resident_bytes, Ordering::Relaxed);
        Ok(arc)
    }

    /// Write every shard to `dir` (created if missing) and cap residency at
    /// `max_resident`, evicting least-recently-used shards immediately.
    pub fn spill(&self, dir: &Path, max_resident: usize) -> Result<(), FfsmError> {
        if max_resident == 0 {
            return Err(FfsmError::Partition("max-resident must be at least 1 (got 0)".into()));
        }
        let mut st = self.state.lock().expect("shard store poisoned");
        if st.dir.is_some() {
            return Err(FfsmError::Partition("shards are already spilled to disk".into()));
        }
        std::fs::create_dir_all(dir).map_err(|e| {
            FfsmError::Partition(format!("cannot create spill directory {}: {e}", dir.display()))
        })?;
        for (i, slot) in st.slots.iter().enumerate() {
            let shard = slot.as_ref().expect("all shards resident before first spill");
            write_shard_file(&shard_path(dir, i), shard)?;
        }
        st.dir = Some(dir.to_path_buf());
        st.max_resident = max_resident;
        self.evict_to_cap(&mut st);
        // The out-of-core regime starts here: restart the high-water mark at
        // the capped residency so the reported peak describes mining under the
        // cap, not the all-resident state every build passes through.
        self.peak_resident_bytes.store(st.resident_bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> ShardStoreStats {
        let st = self.state.lock().expect("shard store poisoned");
        ShardStoreStats {
            loads: self.loads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_shards: st.lru.len(),
            resident_bytes: st.resident_bytes,
            peak_resident_bytes: self.peak_resident_bytes.load(Ordering::Relaxed),
            load_nanos: self.load_nanos.load(Ordering::Relaxed),
            spilled: st.dir.is_some(),
        }
    }

    /// Drop least-recently-used shards until within cap.
    fn evict_to_cap(&self, st: &mut StoreState) {
        while st.lru.len() > st.max_resident {
            let victim = st.lru.pop_front().expect("len > cap >= 1");
            if let Some(shard) = st.slots[victim].take() {
                st.resident_bytes = st.resident_bytes.saturating_sub(shard.approx_bytes());
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn shard_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard_{i}.ffs"))
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> FfsmError {
    FfsmError::Partition(format!("shard file {}: {e}", path.display()))
}

fn write_shard_file(path: &Path, shard: &ResidentShard) -> Result<(), FfsmError> {
    let file = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
    let mut w = BufWriter::new(file);
    let g = shard.graph();
    (|| -> std::io::Result<()> {
        writeln!(w, "s {} {}", g.num_vertices(), g.num_edges())?;
        for v in g.vertices() {
            writeln!(w, "v {} {}", g.label(v).0, shard.to_global()[v as usize])?;
        }
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                if v < u {
                    writeln!(w, "e {v} {u}")?;
                }
            }
        }
        w.flush()
    })()
    .map_err(|e| io_err(path, e))
}

fn read_shard_file(path: &Path) -> Result<ResidentShard, FfsmError> {
    let file = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
    let reader = BufReader::new(file);
    let mut graph = LabeledGraph::new();
    let mut to_global: Vec<VertexId> = Vec::new();
    let mut declared: Option<(usize, usize)> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| io_err(path, e))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bad = |msg: &str| io_err(path, format!("line {}: {msg}", lineno + 1));
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().expect("non-empty line");
        let fields: Vec<u64> = parts
            .map(|p| p.parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad("expected integer fields"))?;
        match (tag, fields.as_slice()) {
            ("s", [n, m]) => {
                if declared.is_some() {
                    return Err(bad("duplicate header"));
                }
                declared = Some((*n as usize, *m as usize));
                graph = LabeledGraph::with_capacity(*n as usize);
                to_global.reserve(*n as usize);
            }
            ("v", [label, global]) => {
                graph.add_vertex(Label(*label as u32));
                to_global.push(*global as VertexId);
            }
            ("e", [u, v]) => {
                graph.add_edge(*u as VertexId, *v as VertexId).map_err(|e| bad(&e.to_string()))?;
            }
            _ => return Err(bad("unrecognised record")),
        }
    }
    let (n, m) = declared.ok_or_else(|| io_err(path, "missing `s` header"))?;
    if graph.num_vertices() != n || graph.num_edges() != m {
        return Err(io_err(
            path,
            format!(
                "header declares {n} vertices / {m} edges, file has {} / {}",
                graph.num_vertices(),
                graph.num_edges()
            ),
        ));
    }
    Ok(ResidentShard::new(graph, to_global))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionSpec, PartitionedGraph};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ffsm-shard-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ring(n: usize) -> LabeledGraph {
        let labels: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
        let edges: Vec<(VertexId, VertexId)> =
            (0..n).map(|i| (i as VertexId, ((i + 1) % n) as VertexId)).collect();
        LabeledGraph::from_edges(&labels, &edges)
    }

    #[test]
    fn spill_evict_reload_round_trips() {
        let g = ring(24);
        let p = PartitionedGraph::build(&g, PartitionSpec::vertex_range(4, 2)).unwrap();
        let before: Vec<(LabeledGraph, Vec<VertexId>)> = (0..4)
            .map(|i| {
                let s = p.shard(i).unwrap();
                (s.graph().clone(), s.to_global().to_vec())
            })
            .collect();
        let whole = p.store_stats().resident_bytes;

        let dir = temp_dir("roundtrip");
        p.spill_to_disk(&dir, 1).unwrap();
        let spilled = p.store_stats();
        assert!(spilled.spilled);
        assert_eq!(spilled.resident_shards, 1);
        assert_eq!(spilled.evictions, 3);
        assert!(spilled.resident_bytes < whole);

        // Touch every shard twice in round-robin: each fetch past the first
        // resident one is a cold reload through the file format.
        for round in 0..2 {
            for (i, (graph, to_global)) in before.iter().enumerate() {
                let s = p.shard(i).unwrap();
                assert_eq!(s.graph(), graph, "round {round} shard {i}");
                assert_eq!(s.to_global(), &to_global[..]);
            }
        }
        let after = p.store_stats();
        assert!(after.loads >= 7, "expected cold reloads, saw {}", after.loads);
        assert_eq!(after.resident_shards, 1);
        // Spill restarted the high-water mark, so the post-spill peak reflects
        // capped mining (at most two shards overlap during a fetch+evict), not
        // the all-resident build.
        assert!(
            after.peak_resident_bytes < whole,
            "peak {} should drop below all-resident {whole}",
            after.peak_resident_bytes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_max_resident_is_a_typed_error() {
        let g = ring(8);
        let p = PartitionedGraph::build(&g, PartitionSpec::vertex_range(2, 2)).unwrap();
        let dir = temp_dir("zerocap");
        let err = p.spill_to_disk(&dir, 0).unwrap_err();
        assert!(matches!(err, FfsmError::Partition(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_prefers_recently_touched_shards() {
        let g = ring(30);
        let p = PartitionedGraph::build(&g, PartitionSpec::vertex_range(3, 1)).unwrap();
        let dir = temp_dir("lru");
        p.spill_to_disk(&dir, 2).unwrap();
        // Resident after spill: the two most-recently built/fetched shards.
        p.shard(0).unwrap();
        p.shard(1).unwrap();
        let loads_before = p.store_stats().loads;
        // 0 and 1 are now the resident pair; touching them again is warm.
        p.shard(0).unwrap();
        p.shard(1).unwrap();
        assert_eq!(p.store_stats().loads, loads_before);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
