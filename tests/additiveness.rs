//! Additiveness (per-component decomposition) of the hypergraph-based measures —
//! the Section 6 "parallel computation" extension — checked end to end: build a data
//! graph as a disjoint union of blocks, enumerate occurrences through the public API,
//! and verify that the decomposed value equals the direct value for every additive
//! measure, while MNI / MI are correctly flagged as non-additive.

use ffsm::core::decompose::{
    mcp_by_components, mies_by_components, mis_by_components, mvc_by_components,
    relaxed_mies_by_components, relaxed_mvc_by_components, DecompositionConfig,
};
use ffsm::core::measures::{MeasureConfig, MvcAlgorithm, SupportMeasures};
use ffsm::core::{HypergraphBasis, OccurrenceSet};
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{generators, patterns, transform, Label, LabeledGraph, Pattern};
use proptest::prelude::*;

fn union_workload(blocks: &[LabeledGraph]) -> LabeledGraph {
    transform::disjoint_union_all(blocks)
}

fn calculator(pattern: &Pattern, graph: &LabeledGraph) -> SupportMeasures {
    let occ = OccurrenceSet::enumerate(pattern, graph, IsoConfig::default());
    SupportMeasures::new(occ, MeasureConfig::default())
}

#[test]
fn all_additive_measures_decompose_exactly() {
    // Mixed blocks: star overlaps of different shapes plus a triangle block.
    let blocks = vec![
        generators::star_overlap(2, 3),
        generators::star_overlap(3, 2),
        generators::star_overlap(1, 4),
        transform::map_labels(&patterns::uniform_clique(3, Label(0)), |_| Label(0)),
    ];
    let graph = union_workload(&blocks);
    let pattern = patterns::single_edge(Label(0), Label(1));
    let m = calculator(&pattern, &graph);
    let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
    let h = occ.hypergraph(HypergraphBasis::Occurrence);
    let config = DecompositionConfig::default();

    assert_eq!(mvc_by_components(&h, MvcAlgorithm::Exact, config).value, m.mvc().value as f64);
    assert_eq!(mies_by_components(&h, config).value, m.mies().value as f64);
    assert_eq!(mis_by_components(&h, config).value, m.mis().value as f64);
    assert_eq!(mcp_by_components(&h, config).value, m.mcp().value as f64);
    assert!((relaxed_mvc_by_components(&h, config).value - m.relaxed_mvc()).abs() < 1e-6);
    assert!((relaxed_mies_by_components(&h, config).value - m.relaxed_mies()).abs() < 1e-6);
}

#[test]
fn parallel_decomposition_equals_sequential_on_large_union() {
    let block = generators::star_overlap(2, 4);
    let graph = generators::replicated(&block, 24, false);
    let pattern = patterns::single_edge(Label(0), Label(1));
    let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
    let h = occ.hypergraph(HypergraphBasis::Occurrence);
    let seq = DecompositionConfig { parallel: false, ..Default::default() };
    let par = DecompositionConfig { parallel: true, ..Default::default() };
    assert_eq!(
        mvc_by_components(&h, MvcAlgorithm::Exact, seq),
        mvc_by_components(&h, MvcAlgorithm::Exact, par)
    );
    assert_eq!(mies_by_components(&h, seq), mies_by_components(&h, par));
    assert_eq!(mis_by_components(&h, seq).value, mis_by_components(&h, par).value);
    assert_eq!(mvc_by_components(&h, MvcAlgorithm::Exact, seq).num_components, 24);
}

#[test]
fn union_value_equals_sum_of_block_values_for_additive_measures() {
    // Compute per-block supports through completely separate occurrence sets and
    // check the union's support is their sum (the defining property of additiveness).
    let blocks = vec![
        generators::star_overlap(2, 2),
        generators::star_overlap(1, 3),
        generators::star_overlap(3, 3),
    ];
    let pattern = patterns::single_edge(Label(0), Label(1));
    let union = union_workload(&blocks);
    let whole = calculator(&pattern, &union);
    let block_mvc: usize = blocks.iter().map(|b| calculator(&pattern, b).mvc().value).sum();
    let block_mis: usize = blocks.iter().map(|b| calculator(&pattern, b).mis().value).sum();
    let block_relaxed: f64 = blocks.iter().map(|b| calculator(&pattern, b).relaxed_mvc()).sum();
    assert_eq!(whole.mvc().value, block_mvc);
    assert_eq!(whole.mis().value, block_mis);
    assert!((whole.relaxed_mvc() - block_relaxed).abs() < 1e-6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random unions of random blocks: decomposed MVC/MIES always equal the direct
    /// values and the bounding chain keeps holding on the union.
    #[test]
    fn decomposition_is_exact_on_random_unions(
        num_blocks in 1usize..5,
        hubs in 1usize..3,
        leaves in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut blocks = Vec::new();
        for i in 0..num_blocks {
            // Alternate star-overlap blocks and small random graphs.
            if i % 2 == 0 {
                blocks.push(generators::star_overlap(hubs, leaves));
            } else {
                blocks.push(generators::gnm_random(8, 12, 2, seed + i as u64));
            }
        }
        let graph = union_workload(&blocks);
        let pattern = patterns::single_edge(Label(0), Label(1));
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
        if occ.num_occurrences() == 0 {
            return Ok(());
        }
        let h = occ.hypergraph(HypergraphBasis::Occurrence);
        let m = SupportMeasures::new(occ, MeasureConfig::default());
        let config = DecompositionConfig::default();
        prop_assert_eq!(mvc_by_components(&h, MvcAlgorithm::Exact, config).value, m.mvc().value as f64);
        prop_assert_eq!(mies_by_components(&h, config).value, m.mies().value as f64);
        prop_assert!((relaxed_mvc_by_components(&h, config).value - m.relaxed_mvc()).abs() < 1e-6);
    }
}
