//! Anti-monotonicity property tests (Theorems 3.2, 3.5, 4.2, 4.3 and the
//! anti-monotonicity of MNI recalled in Section 2.2).
//!
//! For a pattern `p` and a superpattern `P` (built by extending `p` with one edge or
//! one vertex), every anti-monotonic measure must satisfy σ(p, G) ≥ σ(P, G).

use ffsm::core::evaluate;
use ffsm::core::measures::{MeasureConfig, MeasureKind, MiStrategy, SupportMeasures};
use ffsm::core::occurrences::OccurrenceSet;
use ffsm::graph::{generators, patterns, Label, LabeledGraph, Pattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extend `pattern` by one random edge or vertex (labels drawn from `alphabet`).
fn random_extension(pattern: &Pattern, alphabet: &[Label], seed: u64) -> Option<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = pattern.num_vertices() as u32;
    for _ in 0..40 {
        if rng.gen_bool(0.4) && n >= 2 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if let Some(p) = patterns::extend_with_edge(pattern, u, v) {
                return Some(p);
            }
        } else {
            let at = rng.gen_range(0..n);
            let label = alphabet[rng.gen_range(0..alphabet.len())];
            if let Some(p) = patterns::extend_with_vertex(pattern, at, label) {
                return Some(p);
            }
        }
    }
    None
}

fn anti_monotonic_kinds() -> Vec<MeasureKind> {
    vec![
        MeasureKind::Mni,
        MeasureKind::Mi,
        MeasureKind::Mvc,
        MeasureKind::Mis,
        MeasureKind::Mies,
        MeasureKind::RelaxedMvc,
        MeasureKind::RelaxedMies,
    ]
}

/// Evaluate every anti-monotonic measure from a single occurrence enumeration.
/// Returns `None` when the enumeration hits its budget: truncated occurrence sets do
/// not carry the anti-monotonicity guarantee (and would also make the NP-hard
/// measures needlessly expensive in a property test).
fn measure_vector(
    pattern: &Pattern,
    graph: &LabeledGraph,
    config: &MeasureConfig,
) -> Option<Vec<f64>> {
    let occ = OccurrenceSet::enumerate(pattern, graph, config.iso_config.clone());
    if !occ.is_complete() {
        return None;
    }
    let m = SupportMeasures::new(occ, config.clone());
    Some(anti_monotonic_kinds().iter().map(|&k| m.compute(k)).collect())
}

fn check_chain(graph: &LabeledGraph, seed: u64, config: &MeasureConfig) -> Result<(), String> {
    let alphabet = graph.distinct_labels();
    let Some((mut pattern, _)) = generators::sample_pattern(graph, 1, seed) else {
        return Ok(());
    };
    let kinds = anti_monotonic_kinds();
    let Some(mut previous) = measure_vector(&pattern, graph, config) else {
        return Ok(());
    };
    for step in 0..2u64 {
        let Some(next) = random_extension(&pattern, &alphabet, seed ^ ((step + 1) * 7919)) else {
            break;
        };
        let Some(current) = measure_vector(&next, graph, config) else {
            break;
        };
        for (i, kind) in kinds.iter().enumerate() {
            if current[i] > previous[i] + 1e-6 {
                return Err(format!(
                    "{} increased from {} to {} when extending a {}-edge pattern (seed {seed}, step {step})",
                    kind.name(),
                    previous[i],
                    current[i],
                    pattern.num_edges()
                ));
            }
        }
        pattern = next;
        previous = current;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn all_measures_are_anti_monotonic_on_random_graphs(
        n in 16usize..40,
        labels in 1u32..4,
        seed in 0u64..10_000,
    ) {
        let graph = generators::gnm_random(n, n * 2, labels, seed);
        prop_assume!(graph.num_edges() > 0);
        // The occurrence cap keeps the exact MIS/MVC searches (quadratic overlap graph
        // plus branch-and-bound) at property-test scale; chains whose enumeration
        // would be truncated are skipped instead of producing bogus comparisons.
        let config = MeasureConfig {
            iso_config: ffsm::graph::isomorphism::IsoConfig::with_limit(250),
            search_budget: ffsm::hypergraph::SearchBudget(30_000),
            ..MeasureConfig::default()
        };
        if let Err(msg) = check_chain(&graph, seed, &config) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn label_class_mi_is_anti_monotonic(
        n in 20usize..60,
        seed in 0u64..10_000,
    ) {
        // The LabelClasses strategy has the cleanest theoretical guarantee (its subset
        // family is closed under pattern extension); check it separately.
        let graph = generators::community_graph(3, n / 3 + 1, 0.3, 0.02, 3, seed);
        prop_assume!(graph.num_edges() > 0);
        let config = MeasureConfig {
            iso_config: ffsm::graph::isomorphism::IsoConfig::with_limit(2_000),
            mi_strategy: MiStrategy::LabelClasses,
            ..MeasureConfig::default()
        };
        let alphabet = graph.distinct_labels();
        let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed) else { return Ok(()); };
        let base = evaluate(&pattern, &graph, MeasureKind::Mi, &config);
        if let Some(extended) = random_extension(&pattern, &alphabet, seed ^ 0xfeed) {
            let ext = evaluate(&extended, &graph, MeasureKind::Mi, &config);
            prop_assert!(ext <= base + 1e-9, "LabelClasses MI rose from {base} to {ext}");
        }
    }
}

#[test]
fn figure2_to_figure5_extension_is_anti_monotonic_for_all_measures() {
    // The paper's own extension example: triangle -> triangle + pendant vertex.
    let config = MeasureConfig::default();
    let fig2 = ffsm::graph::figures::figure2();
    let fig5 = ffsm::graph::figures::figure5();
    for kind in anti_monotonic_kinds() {
        let small = evaluate(&fig2.pattern, &fig2.graph, kind, &config);
        let large = evaluate(&fig5.pattern, &fig5.graph, kind, &config);
        assert!(
            large <= small + 1e-9,
            "{} increased from {small} to {large} on the Figure 5 extension",
            kind.name()
        );
    }
}

#[test]
fn occurrence_and_instance_counts_are_not_anti_monotonic() {
    // The paper's motivation for needing dedicated support measures: raw counts can
    // grow when a pattern is extended.  Exhibit a concrete witness.
    let graph = LabeledGraph::from_edges(&[0, 1, 1, 1, 1], &[(0, 1), (0, 2), (0, 3), (0, 4)]);
    let config = MeasureConfig::default();
    let small = patterns::single_edge(Label(0), Label(1));
    let large = patterns::uniform_star(2, Label(0), Label(1));
    let small_occ = evaluate(&small, &graph, MeasureKind::OccurrenceCount, &config);
    let large_occ = evaluate(&large, &graph, MeasureKind::OccurrenceCount, &config);
    assert!(large_occ > small_occ, "expected occurrence count to grow: {small_occ} -> {large_occ}");
    let small_inst = evaluate(&small, &graph, MeasureKind::InstanceCount, &config);
    let large_inst = evaluate(&large, &graph, MeasureKind::InstanceCount, &config);
    assert!(
        large_inst > small_inst,
        "expected instance count to grow: {small_inst} -> {large_inst}"
    );
}
