//! E7 — approximation quality and cost: exact vs greedy MVC, LP relaxation, and the
//! MI strategy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffsm_bench::workloads;
use ffsm_core::measures::{MeasureConfig, MiStrategy, MvcAlgorithm, SupportMeasures};
use std::hint::black_box;
use std::time::Duration;

fn bench_mvc_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvc_algorithms");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    let (graph, pattern) = workloads::star_overlap_workload(512);
    let occ = workloads::enumerate(&pattern, &graph, 1_000_000);
    let calc = SupportMeasures::new(occ, MeasureConfig::default());
    let _ = calc.hypergraph(Default::default());
    for (name, algo) in [
        ("exact", MvcAlgorithm::Exact),
        ("greedy_matching", MvcAlgorithm::GreedyMatching),
        ("greedy_degree", MvcAlgorithm::GreedyDegree),
    ] {
        group.bench_function(BenchmarkId::new("mvc", name), |b| {
            b.iter(|| black_box(calc.mvc_with(algo)))
        });
    }
    group.bench_function(BenchmarkId::new("mvc", "lp_relaxation"), |b| {
        b.iter(|| black_box(calc.relaxed_mvc()))
    });
    group.finish();
}

fn bench_mi_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("mi_strategies");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    let dataset = ffsm_graph::datasets::chemical_like(60, 3);
    let pattern = ffsm_graph::patterns::uniform_path(4, ffsm_graph::Label(0));
    let occ = workloads::enumerate(&pattern, &dataset.graph, 200_000);
    let calc = SupportMeasures::new(occ, MeasureConfig::default());
    for (name, strategy) in [
        ("singletons", MiStrategy::Singletons),
        ("orbits", MiStrategy::AutomorphismOrbits),
        ("label_classes", MiStrategy::LabelClasses),
        ("connected_2", MiStrategy::ConnectedK(2)),
    ] {
        group.bench_function(BenchmarkId::new("mi", name), |b| {
            b.iter(|| black_box(calc.mi_with(strategy)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mvc_algorithms, bench_mi_strategies);
criterion_main!(benches);
