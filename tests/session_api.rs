//! Integration tests for the `MiningSession` builder API through the public `ffsm`
//! facade: builder defaults, the paper's containment ordering across built-in
//! measures, typed error paths, and a user-defined `SupportMeasure` plugged into the
//! session.

use ffsm::core::measures::MeasureKind;
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::{generators, LabeledGraph};
use ffsm::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// `copies` labelled triangles, chained so neighbouring copies share a bridge edge
/// (the bridges create overlap, which separates the conservative measures from MNI).
fn replicated_triangles(copies: usize, connected: bool) -> LabeledGraph {
    let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
    generators::replicated(&triangle, copies, connected)
}

#[test]
fn builder_defaults_round_trip() {
    let graph = LabeledGraph::new();
    let defaults = SessionConfig::default();
    let session = MiningSession::on(&graph);
    assert_eq!(session.config().min_support, defaults.min_support);
    assert_eq!(session.config().max_edges, defaults.max_edges);
    assert_eq!(session.config().threads, defaults.threads);
    assert_eq!(session.config().top_k, defaults.top_k);
    assert_eq!(session.config().budget, defaults.budget);

    let configured = MiningSession::on(&graph)
        .measure(MeasureKind::Mvc)
        .min_support(9.0)
        .max_edges(5)
        .threads(2)
        .top_k(7)
        .budget(MiningBudget { max_evaluations: 11, max_patterns: 3 });
    let config = configured.config();
    assert_eq!(config.min_support, 9.0);
    assert_eq!(config.max_edges, 5);
    assert_eq!(config.threads, 2);
    assert_eq!(config.top_k, Some(7));
    assert_eq!(config.budget, MiningBudget { max_evaluations: 11, max_patterns: 3 });
}

#[test]
fn every_builtin_measure_respects_the_containment_ordering() {
    // The paper's bounding chain σMIS ≤ σMVC ≤ σMI ≤ σMNI means that at a fixed
    // threshold the frequent-pattern sets are nested: anything frequent under a
    // conservative measure is frequent under a permissive one.
    let graph = replicated_triangles(5, true);
    let tau = 4.0;
    let mut results: Vec<HashSet<_>> = Vec::new();
    for measure in [MeasureKind::Mis, MeasureKind::Mvc, MeasureKind::Mi, MeasureKind::Mni] {
        let result = MiningSession::on(&graph)
            .measure(measure)
            .min_support(tau)
            .max_edges(3)
            .run()
            .expect("valid session");
        results.push(result.patterns.iter().map(|p| canonical_code(&p.pattern)).collect());
    }
    for (i, w) in results.windows(2).enumerate() {
        assert!(
            w[0].is_subset(&w[1]),
            "containment MIS <= MVC <= MI <= MNI violated at position {i}"
        );
    }
    // Counts follow the same ordering.
    for w in results.windows(2) {
        assert!(w[0].len() <= w[1].len());
    }
}

#[test]
fn all_anti_monotone_builtins_mine_the_disjoint_triangle_forest() {
    // On disjoint copies there is no overlap, so every measure in the chain reports
    // the triangle with support = number of copies.
    let copies = 4;
    let graph = replicated_triangles(copies, false);
    for measure in [
        MeasureKind::Mni,
        MeasureKind::MniK(2),
        MeasureKind::Mi,
        MeasureKind::Mvc,
        MeasureKind::Mis,
        MeasureKind::Mies,
        MeasureKind::RelaxedMvc,
        MeasureKind::RelaxedMies,
        MeasureKind::Mcp,
    ] {
        let result = MiningSession::on(&graph)
            .measure(measure)
            .min_support(copies as f64)
            .max_edges(3)
            .run()
            .unwrap_or_else(|e| panic!("session failed under {measure}: {e}"));
        assert!(
            result.patterns.iter().any(|p| p.pattern.num_edges() == 3),
            "triangle not frequent under {measure}"
        );
    }
}

#[test]
fn typed_errors_surface_through_the_facade() {
    let graph = replicated_triangles(2, false);
    let err = MiningSession::on(&graph)
        .measure(MeasureKind::InstanceCount)
        .run()
        .expect_err("instance count must be rejected for pruning");
    assert!(matches!(err, FfsmError::NotAntiMonotone(_)));
    assert!(err.to_string().contains("anti-monotone"));

    let err = MiningSession::on(&graph).top_k(0).run().expect_err("top_k(0) is invalid");
    assert!(matches!(err, FfsmError::InvalidConfig(_)));

    let err = "no-such-measure".parse::<MeasureKind>().expect_err("unknown name");
    assert!(matches!(err, FfsmError::UnknownMeasure(_)));
}

#[test]
fn custom_support_measure_mines_end_to_end() {
    /// A user-defined measure: the number of *disjoint-by-construction* graph
    /// components an occurrence lands in, approximated here as the minimum per-node
    /// image count (i.e. MNI computed by hand through the public OccurrenceSet API).
    struct HandRolledMni;
    impl SupportMeasure for HandRolledMni {
        fn support(&self, occurrences: &OccurrenceSet) -> f64 {
            let pattern = occurrences.pattern().clone();
            pattern.vertices().map(|v| occurrences.node_images(v).len()).min().unwrap_or(0) as f64
        }
        fn is_anti_monotone(&self) -> bool {
            true
        }
        fn name(&self) -> &str {
            "hand-rolled-MNI"
        }
    }

    let graph = replicated_triangles(5, false);
    let custom: Arc<dyn SupportMeasure> = Arc::new(HandRolledMni);
    let custom_result = MiningSession::on(&graph)
        .measure(custom)
        .min_support(5.0)
        .max_edges(3)
        .run()
        .expect("valid session");
    let builtin_result = MiningSession::on(&graph)
        .measure(MeasureKind::Mni)
        .min_support(5.0)
        .max_edges(3)
        .run()
        .expect("valid session");
    // The hand-rolled MNI is the real MNI, so the runs agree exactly.
    assert_eq!(custom_result.len(), builtin_result.len());
    for (a, b) in custom_result.patterns.iter().zip(&builtin_result.patterns) {
        assert_eq!(a.support, b.support);
        assert_eq!(canonical_code(&a.pattern), canonical_code(&b.pattern));
    }
}

#[test]
fn parallel_and_top_k_modes_agree_with_sequential() {
    let graph = replicated_triangles(5, true);
    let sequential =
        MiningSession::on(&graph).min_support(4.0).max_edges(3).run().expect("valid session");
    let parallel = MiningSession::on(&graph)
        .min_support(4.0)
        .max_edges(3)
        .threads(4)
        .run()
        .expect("valid session");
    let codes = |r: &MiningResult| {
        r.patterns.iter().map(|p| canonical_code(&p.pattern)).collect::<HashSet<_>>()
    };
    assert_eq!(codes(&sequential), codes(&parallel));

    let k = 3;
    let topk = MiningSession::on(&graph)
        .min_support(1.0)
        .max_edges(3)
        .top_k(k)
        .run()
        .expect("valid session");
    let exhaustive =
        MiningSession::on(&graph).min_support(1.0).max_edges(3).run().expect("valid session");
    let mut best: Vec<f64> = exhaustive.patterns.iter().map(|p| p.support).collect();
    best.sort_by(|a, b| b.partial_cmp(a).unwrap());
    best.truncate(k);
    let topk_supports: Vec<f64> = topk.patterns.iter().map(|p| p.support).collect();
    assert_eq!(topk_supports, best);
}
