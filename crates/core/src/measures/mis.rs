//! The MIS (overlap graph) and MIES (hypergraph) support measures.
//!
//! * σMIS (Definition 2.2.7, Vanetik et al.): the maximum number of pairwise
//!   non-overlapping occurrences/instances, computed as a maximum independent set of
//!   the *overlap graph*.
//! * σMIES (Definition 4.2.1): the maximum independent edge set of the occurrence /
//!   instance hypergraph.
//!
//! Theorem 4.1 proves the two are equal; keeping both implementations (one via the
//! overlap graph, one via hypergraph set packing) lets the test-suite and experiment
//! E2 verify the equivalence computationally instead of assuming it.

use super::MeasureOutcome;
use ffsm_hypergraph::independent_set::{exact_max_independent_set, SimpleGraph};
use ffsm_hypergraph::matching::exact_independent_edge_set;
use ffsm_hypergraph::{Hypergraph, SearchBudget};

/// MIS support on an already-built overlap graph — the single solving path shared by
/// [`mis`], `SupportMeasures` (which caches the graph) and the miner.
pub fn mis_on_graph(overlap: &SimpleGraph, budget: SearchBudget) -> MeasureOutcome {
    let res = exact_max_independent_set(overlap, budget);
    MeasureOutcome { value: res.value, optimal: res.optimal }
}

/// Overlap-graph maximum-independent-set support: builds the overlap graph of the
/// hypergraph's edges (vertex overlap, Definition 2.2.3/2.2.5) through the inverted
/// incidence index ([`Hypergraph::overlap_graph`]) and solves MIS on it.  Callers
/// that also need σMCP should go through `SupportMeasures`, whose `OverlapCache`
/// shares one overlap-graph build between the two.
pub fn mis(hypergraph: &Hypergraph, budget: SearchBudget) -> MeasureOutcome {
    if hypergraph.is_empty() {
        return MeasureOutcome { value: 0, optimal: true };
    }
    mis_on_graph(&hypergraph.overlap_graph(), budget)
}

/// Maximum independent edge set support on the hypergraph itself (set packing).
pub fn mies(hypergraph: &Hypergraph, budget: SearchBudget) -> MeasureOutcome {
    if hypergraph.is_empty() {
        return MeasureOutcome { value: 0, optimal: true };
    }
    let res = exact_independent_edge_set(hypergraph, budget);
    MeasureOutcome { value: res.value, optimal: res.optimal }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occurrences::{HypergraphBasis, OccurrenceSet};
    use ffsm_graph::figures;
    use ffsm_graph::isomorphism::IsoConfig;

    fn hypergraphs(example: &ffsm_graph::figures::FigureExample) -> (Hypergraph, Hypergraph) {
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        (occ.hypergraph(HypergraphBasis::Occurrence), occ.hypergraph(HypergraphBasis::Instance))
    }

    #[test]
    fn figure2_mis_is_one() {
        let (oh, ih) = hypergraphs(&figures::figure2());
        assert_eq!(mis(&oh, SearchBudget::default()).value, 1);
        assert_eq!(mis(&ih, SearchBudget::default()).value, 1);
    }

    #[test]
    fn figure6_mis_is_two() {
        let (oh, _) = hypergraphs(&figures::figure6());
        assert_eq!(mis(&oh, SearchBudget::default()).value, 2);
        assert_eq!(mies(&oh, SearchBudget::default()).value, 2);
    }

    #[test]
    fn figure8_mis_equals_mies_equals_two() {
        let (_, ih) = hypergraphs(&figures::figure8());
        assert_eq!(mis(&ih, SearchBudget::default()).value, 2);
        assert_eq!(mies(&ih, SearchBudget::default()).value, 2);
    }

    #[test]
    fn theorem_4_1_mis_equals_mies_on_all_figures() {
        for example in ffsm_graph::figures::all_figures() {
            let (oh, ih) = hypergraphs(&example);
            for h in [&oh, &ih] {
                let a = mis(h, SearchBudget::default());
                let b = mies(h, SearchBudget::default());
                assert!(a.optimal && b.optimal, "search truncated on {}", example.name);
                assert_eq!(a.value, b.value, "MIS != MIES on {}", example.name);
            }
        }
    }

    #[test]
    fn occurrence_and_instance_bases_agree() {
        // Duplicate hyperedges (same image set under automorphic occurrences) cannot
        // both be picked, so the basis does not change MIS/MIES.
        for example in ffsm_graph::figures::all_figures() {
            let (oh, ih) = hypergraphs(&example);
            assert_eq!(
                mis(&oh, SearchBudget::default()).value,
                mis(&ih, SearchBudget::default()).value,
                "basis changes MIS on {}",
                example.name
            );
        }
    }

    #[test]
    fn empty_hypergraph_is_zero() {
        let h = Hypergraph::new(0);
        assert_eq!(mis(&h, SearchBudget::default()).value, 0);
        assert_eq!(mies(&h, SearchBudget::default()).value, 0);
    }
}
