//! Occurrences, instances and their hypergraphs.
//!
//! Given a pattern `P` and data graph `G`:
//!
//! * an **occurrence** is a subgraph isomorphism `f : P → G` (Definition 2.1.8);
//! * an **instance** is a subgraph of `G` isomorphic to `P` (Definition 2.1.9) — the
//!   image of one or more occurrences;
//! * the **occurrence hypergraph** has one vertex per pattern-node image and one edge
//!   per occurrence, the edge being the occurrence's image vertex set
//!   (Definition 3.1.3);
//! * the **instance hypergraph** is the same construction over instances
//!   (Definition 3.1.4): occurrences that project the pattern onto the same subgraph
//!   (same image vertex *and* edge set) collapse into a single hyperedge.
//!
//! Hypergraph vertices are re-indexed densely (`0..k`); [`OccurrenceSet`] keeps the
//! mapping back to data-graph vertex identifiers.

use ffsm_graph::isomorphism::{Embedding, IsoConfig};
use ffsm_graph::{LabeledGraph, Pattern, VertexId};
use ffsm_hypergraph::Hypergraph;
use ffsm_match::{GraphIndex, SearchArena};
use std::collections::{BTreeSet, HashMap};

/// Which hypergraph a measure is evaluated on (the paper defines MVC/MIES/MIS on
/// "occurrence (instance)" hypergraphs; both are supported everywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HypergraphBasis {
    /// One hyperedge per occurrence (subgraph isomorphism).  The default.
    #[default]
    Occurrence,
    /// One hyperedge per instance (distinct image subgraph).
    Instance,
}

/// An instance of the pattern: the image subgraph, identified by its vertex and edge
/// sets in the data graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Instance {
    /// Sorted data-graph vertices of the image subgraph.
    pub vertices: Vec<VertexId>,
    /// Sorted data-graph edges (as `(min, max)` pairs) of the image subgraph.
    pub edges: Vec<(VertexId, VertexId)>,
}

/// The set of all occurrences of one pattern in one data graph, plus the derived
/// hypergraph views.
#[derive(Debug, Clone)]
pub struct OccurrenceSet {
    pattern: Pattern,
    embeddings: Vec<Embedding>,
    complete: bool,
    /// hypergraph vertex index -> data graph vertex id
    hg_vertex_to_data: Vec<VertexId>,
    /// data graph vertex id -> hypergraph vertex index
    data_to_hg_vertex: HashMap<VertexId, usize>,
}

impl OccurrenceSet {
    /// Enumerate all occurrences of `pattern` in `graph`, dispatching on
    /// `config.backend` (the candidate-space engine of `ffsm-match` by default, the
    /// naive oracle on request).  Builds a throwaway per-graph [`GraphIndex`] when
    /// the candidate-space engine runs — callers matching many patterns against one
    /// graph (the mining engine, the CLI) should build the index once and use
    /// [`OccurrenceSet::enumerate_with_index`] instead.
    pub fn enumerate(pattern: &Pattern, graph: &LabeledGraph, config: IsoConfig) -> Self {
        let result = ffsm_match::enumerate(pattern, graph, None, config);
        Self::from_embeddings(pattern.clone(), result.embeddings, result.complete)
    }

    /// Enumerate all occurrences of `pattern` in `graph`, reusing a prebuilt
    /// per-graph [`GraphIndex`] (which must have been built from this `graph`).
    /// With `config.backend == EnumeratorBackend::Naive` the index is ignored and
    /// the oracle runs instead.
    pub fn enumerate_with_index(
        pattern: &Pattern,
        graph: &LabeledGraph,
        index: &GraphIndex,
        config: IsoConfig,
    ) -> Self {
        let result = ffsm_match::enumerate(pattern, graph, Some(index), config);
        Self::from_embeddings(pattern.clone(), result.embeddings, result.complete)
    }

    /// [`OccurrenceSet::enumerate_with_index`] additionally reusing the caller's
    /// [`SearchArena`] — the hot-loop entry for the mining engine's level workers,
    /// which keep one arena each across thousands of candidate evaluations instead
    /// of allocating search buffers per pattern.  Any arena yields identical
    /// results.
    pub fn enumerate_with_arena(
        pattern: &Pattern,
        graph: &LabeledGraph,
        index: &GraphIndex,
        config: IsoConfig,
        arena: &mut SearchArena,
    ) -> Self {
        let result = ffsm_match::enumerate_with(pattern, graph, Some(index), config, arena);
        Self::from_embeddings(pattern.clone(), result.embeddings, result.complete)
    }

    /// Build an occurrence set from pre-computed embeddings (used by the miner, which
    /// maintains embeddings incrementally).
    pub fn from_embeddings(pattern: Pattern, embeddings: Vec<Embedding>, complete: bool) -> Self {
        let mut hg_vertex_to_data = Vec::new();
        let mut data_to_hg_vertex = HashMap::new();
        for emb in &embeddings {
            for &v in emb {
                data_to_hg_vertex.entry(v).or_insert_with(|| {
                    hg_vertex_to_data.push(v);
                    hg_vertex_to_data.len() - 1
                });
            }
        }
        OccurrenceSet { pattern, embeddings, complete, hg_vertex_to_data, data_to_hg_vertex }
    }

    /// The query pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Number of occurrences.
    pub fn num_occurrences(&self) -> usize {
        self.embeddings.len()
    }

    /// `false` if the enumeration hit its embedding budget, in which case every
    /// measure computed from this set is a lower bound on the true value.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The raw occurrence maps (`occurrence[pattern node] = data vertex`).
    pub fn embeddings(&self) -> &[Embedding] {
        &self.embeddings
    }

    /// Number of distinct pattern-node images (= hypergraph vertices).
    pub fn num_images(&self) -> usize {
        self.hg_vertex_to_data.len()
    }

    /// The data-graph vertex behind hypergraph vertex `i`.
    pub fn image_vertex(&self, i: usize) -> VertexId {
        self.hg_vertex_to_data[i]
    }

    /// The hypergraph vertex index of data-graph vertex `v`, if it is an image.
    pub fn hypergraph_index(&self, v: VertexId) -> Option<usize> {
        self.data_to_hg_vertex.get(&v).copied()
    }

    /// Inverted index from hypergraph vertex index to the ids (ascending) of the
    /// occurrences whose image contains that vertex — the candidate-pruning index of
    /// the indexed overlap builder: two occurrences can only overlap if they meet in
    /// one of these buckets.
    pub fn vertex_occurrence_index(&self) -> Vec<Vec<u32>> {
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.num_images()];
        for (i, emb) in self.embeddings.iter().enumerate() {
            for &v in emb {
                let bucket = &mut buckets[self.data_to_hg_vertex[&v]];
                // A non-injective image may repeat a vertex; occurrence ids arrive in
                // ascending order, so a tail check keeps each bucket sorted unique.
                if bucket.last() != Some(&(i as u32)) {
                    bucket.push(i as u32);
                }
            }
        }
        buckets
    }

    /// Distinct images of pattern node `node` (the image set whose size MNI minimises).
    pub fn node_images(&self, node: VertexId) -> BTreeSet<VertexId> {
        self.embeddings.iter().map(|emb| emb[node as usize]).collect()
    }

    /// Distinct image *sets* of a coarse-grained node subset `W` (Definition 3.2.1):
    /// `c(W) = |{ f_i(W) }|` where each image is taken as a set.
    pub fn subset_image_count(&self, subset: &[VertexId]) -> usize {
        let mut images: BTreeSet<Vec<VertexId>> = BTreeSet::new();
        for emb in &self.embeddings {
            let mut img: Vec<VertexId> = subset.iter().map(|&v| emb[v as usize]).collect();
            img.sort_unstable();
            img.dedup();
            images.insert(img);
        }
        images.len()
    }

    /// All distinct instances (Definition 2.1.9), sorted.
    pub fn instances(&self) -> Vec<Instance> {
        let mut set: BTreeSet<Instance> = BTreeSet::new();
        for emb in &self.embeddings {
            let mut vertices: Vec<VertexId> = emb.clone();
            vertices.sort_unstable();
            vertices.dedup();
            let mut edges: Vec<(VertexId, VertexId)> = self
                .pattern
                .edges()
                .map(|(u, v)| {
                    let (a, b) = (emb[u as usize], emb[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect();
            edges.sort_unstable();
            edges.dedup();
            set.insert(Instance { vertices, edges });
        }
        set.into_iter().collect()
    }

    /// Number of distinct instances.
    pub fn num_instances(&self) -> usize {
        self.instances().len()
    }

    /// The occurrence hypergraph `H_O` (Definition 3.1.3): one edge per occurrence.
    /// Edges with identical vertex sets are kept as distinct edges — their edge id
    /// plays the role of the occurrence label `f_i`.
    pub fn occurrence_hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new(self.num_images());
        for emb in &self.embeddings {
            let edge: Vec<usize> = emb.iter().map(|v| self.data_to_hg_vertex[v]).collect();
            h.add_edge(edge).expect("occurrence edge is valid");
        }
        h
    }

    /// The instance hypergraph `H_I` (Definition 3.1.4): one edge per instance.
    pub fn instance_hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new(self.num_images());
        for inst in self.instances() {
            let edge: Vec<usize> =
                inst.vertices.iter().map(|v| self.data_to_hg_vertex[v]).collect();
            h.add_edge(edge).expect("instance edge is valid");
        }
        h
    }

    /// The hypergraph for the requested basis.
    pub fn hypergraph(&self, basis: HypergraphBasis) -> Hypergraph {
        match basis {
            HypergraphBasis::Occurrence => self.occurrence_hypergraph(),
            HypergraphBasis::Instance => self.instance_hypergraph(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::figures;
    use ffsm_graph::isomorphism::IsoConfig;

    fn build(example: &ffsm_graph::figures::FigureExample) -> OccurrenceSet {
        OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default())
    }

    #[test]
    fn figure2_occurrences_vs_instances() {
        // 6 occurrences collapse into a single instance (the triangle {1,2,3}).
        let occ = build(&figures::figure2());
        assert_eq!(occ.num_occurrences(), 6);
        assert_eq!(occ.num_instances(), 1);
        let oh = occ.occurrence_hypergraph();
        assert_eq!(oh.num_edges(), 6);
        assert_eq!(oh.uniform_rank(), Some(3));
        let ih = occ.instance_hypergraph();
        assert_eq!(ih.num_edges(), 1);
        assert_eq!(occ.num_images(), 3);
        assert!(occ.is_complete());
    }

    #[test]
    fn figure3_occurrence_equals_instance_hypergraph() {
        // The pattern has no non-trivial automorphism, so both hypergraphs have 6 edges.
        let occ = build(&figures::figure3());
        assert_eq!(occ.occurrence_hypergraph().num_edges(), 6);
        assert_eq!(occ.instance_hypergraph().num_edges(), 6);
        assert_eq!(occ.occurrence_hypergraph().uniform_rank(), Some(3));
        // The paper lists the hypergraph vertex set: 14 distinct images.
        assert_eq!(occ.num_images(), 14);
    }

    #[test]
    fn figure4_node_images_and_subset_counts() {
        let occ = build(&figures::figure4());
        assert_eq!(occ.num_occurrences(), 2);
        assert_eq!(occ.node_images(0).len(), 2); // v1 -> {1, 4}
        assert_eq!(occ.node_images(1).len(), 2); // v2 -> {2, 3}
        assert_eq!(occ.node_images(2).len(), 2); // v3 -> {3, 2}
                                                 // The transitive subset {v2, v3} has a single image set {2, 3}.
        assert_eq!(occ.subset_image_count(&[1, 2]), 1);
        assert_eq!(occ.subset_image_count(&[0]), 2);
        assert_eq!(occ.subset_image_count(&[0, 1, 2]), 2);
    }

    #[test]
    fn figure8_instances_form_a_cycle() {
        let occ = build(&figures::figure8());
        assert_eq!(occ.num_occurrences(), 4);
        assert_eq!(occ.num_instances(), 4);
        let ih = occ.instance_hypergraph();
        let overlap = ih.overlap_adjacency();
        // Every instance overlaps exactly two others (the 4-cycle overlap graph).
        assert!(overlap.iter().all(|n| n.len() == 2));
    }

    #[test]
    fn mapping_between_hypergraph_and_data_vertices() {
        let occ = build(&figures::figure6());
        assert_eq!(occ.num_images(), 8);
        for i in 0..occ.num_images() {
            let data = occ.image_vertex(i);
            assert_eq!(occ.hypergraph_index(data), Some(i));
        }
        assert_eq!(occ.hypergraph_index(1000), None);
    }

    #[test]
    fn vertex_occurrence_index_inverts_the_embeddings() {
        let occ = build(&figures::figure6());
        let buckets = occ.vertex_occurrence_index();
        assert_eq!(buckets.len(), occ.num_images());
        for (h, bucket) in buckets.iter().enumerate() {
            let data_vertex = occ.image_vertex(h);
            let expected: Vec<u32> = occ
                .embeddings()
                .iter()
                .enumerate()
                .filter(|(_, emb)| emb.contains(&data_vertex))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(bucket, &expected, "bucket of hypergraph vertex {h}");
        }
        // Every occurrence id shows up exactly pattern-size times across the buckets.
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, occ.num_occurrences() * occ.pattern().num_vertices());
    }

    #[test]
    fn enumerate_dispatches_and_shares_the_index() {
        use ffsm_graph::isomorphism::EnumeratorBackend;
        let example = figures::figure3();
        let default =
            OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        let naive = OccurrenceSet::enumerate(
            &example.pattern,
            &example.graph,
            IsoConfig::default().with_backend(EnumeratorBackend::Naive),
        );
        let index = GraphIndex::build(&example.graph);
        let shared = OccurrenceSet::enumerate_with_index(
            &example.pattern,
            &example.graph,
            &index,
            IsoConfig::default(),
        );
        // Same multiset of embeddings on every path (the engines may order them
        // differently), and the prebuilt index changes nothing.
        let sorted = |occ: &OccurrenceSet| {
            let mut v = occ.embeddings().to_vec();
            v.sort();
            v
        };
        assert_eq!(sorted(&default), sorted(&naive));
        assert_eq!(default.embeddings(), shared.embeddings());
        assert_eq!(default.num_occurrences(), 6);
        // The naive backend ignores a passed index.
        let naive_shared = OccurrenceSet::enumerate_with_index(
            &example.pattern,
            &example.graph,
            &index,
            IsoConfig::default().with_backend(EnumeratorBackend::Naive),
        );
        assert_eq!(naive_shared.embeddings(), naive.embeddings());
    }

    #[test]
    fn empty_occurrence_set() {
        let pattern = ffsm_graph::patterns::single_edge(ffsm_graph::Label(7), ffsm_graph::Label(8));
        let graph = ffsm_graph::LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
        assert_eq!(occ.num_occurrences(), 0);
        assert_eq!(occ.num_instances(), 0);
        assert_eq!(occ.num_images(), 0);
        assert!(occ.occurrence_hypergraph().is_empty());
    }

    #[test]
    fn instance_distinguishes_edge_sets_on_same_vertices() {
        // Two occurrences with the same vertex set but different edge images are
        // different instances: pattern = path of 3 on a triangle.
        let graph = ffsm_graph::LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let pattern = ffsm_graph::patterns::uniform_path(3, ffsm_graph::Label(0));
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
        assert_eq!(occ.num_occurrences(), 6);
        // Three instances: the three 2-edge sub-paths of the triangle.
        assert_eq!(occ.num_instances(), 3);
    }
}
