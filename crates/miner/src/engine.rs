//! The unified mining engine behind [`crate::MiningSession`].
//!
//! One level-synchronous pattern-growth loop serves every mode — threshold,
//! level-parallel and top-k — exactly as before, but the loop is now a *resumable
//! state machine* ([`EngineState`]): each [`EngineState::step`] processes one level
//! and pushes the resulting [`MiningEvent`]s, so the
//! [`PatternStream`](crate::PatternStream) can pull lazily instead of blocking
//! until the whole result materialises.  `run()` is a thin collect-the-stream
//! adapter over the same machine.
//!
//! ## Determinism and interruption
//!
//! The partition and merge order of the level evaluation are fixed, so results
//! are identical for every thread count.  Cancellation and deadlines are checked
//! between levels *and* cooperatively inside occurrence enumeration (via the
//! [`CancelToken`] embedded in the `IsoConfig`); an interrupted level is discarded
//! wholesale, so the emitted patterns are always a deterministic prefix of the
//! full run — whole levels, never a partially evaluated one.
//!
//! Support is computed through an `Arc<dyn SupportMeasure>`, so built-in and
//! user-defined measures take exactly the same path.

use crate::delta::{occurrences_touch, sorted_intersects, CacheMode, CachedEval, EvalCache};
use crate::extension::{dedupe_with_codes, extensions, seed_patterns};
use crate::prepared::PreparedGraph;
use crate::stream::{LevelSummary, MiningEvent, RunSummary};
use crate::types::{
    BudgetKind, Completion, FrequentPattern, MiningResult, MiningStats, UndecidedPattern,
};
use ffsm_approx::BoundsEvaluator;
use ffsm_core::{CancelToken, GraphIndex, OccurrenceSet, SearchArena, SupportMeasure};
use ffsm_graph::canonical::CanonicalCode;
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_graph::{Pattern, VertexId};
use ffsm_obs::{tls, Phase, PhaseTimes, SearchCounters};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Canonical, validated configuration the engine runs from (the session builder's
/// output).
pub(crate) struct EngineConfig {
    /// Support threshold τ (the floor threshold in top-k mode).
    pub min_support: f64,
    /// Occurrence-enumeration settings.  `iso_config.cancel` is the *combined*
    /// token (session token + deadline) so enumeration aborts cooperatively.
    pub iso_config: IsoConfig,
    /// Stop growing patterns beyond this many edges.
    pub max_pattern_edges: usize,
    /// Safety cap on reported patterns (threshold mode).
    pub max_patterns: usize,
    /// Safety cap on support evaluations.
    pub max_evaluations: usize,
    /// Worker threads for level evaluation (already resolved to >= 1).
    pub threads: usize,
    /// `Some(k)` switches to top-k mode.
    pub top_k: Option<usize>,
    /// The session's cancellation token (flag only — its deadline, if any, is
    /// folded into `deadline` below), used to attribute an interruption to
    /// [`Completion::Cancelled`].
    pub cancel: CancelToken,
    /// The effective wall-clock deadline: the tighter of the session's
    /// `.deadline(..)` and any deadline the caller attached to the token itself.
    pub deadline: Option<Instant>,
    /// Fine-grained span sampling (per-candidate space/search times).  Never
    /// changes results; counters and coarse timings are on regardless.
    pub metrics: bool,
    /// Bounds-first evaluation ([`crate::MiningSession::bounds_first`]): present
    /// when the session enabled the mode *and* the measure kind admits sound
    /// cheap bounds.  Decides candidates from certified intervals where
    /// possible, enumerating occurrences and running the exact solver only
    /// inside the uncertain band.
    pub bounds: Option<Arc<BoundsEvaluator>>,
}

/// One evaluated (or cache-reused, or bound-decided) candidate.
#[derive(Debug, Clone)]
struct EvalOutcome {
    /// The value compared against the threshold.  Exact evaluations report the
    /// exact support; a bound-decided candidate reports the interval side that
    /// proves the decision (`lo` for frequent, `hi` for infrequent), so the
    /// engine's `support >= threshold` test agrees with the certified verdict
    /// by construction.
    support: f64,
    num_occurrences: usize,
    /// Sorted distinct image vertices — only populated when a cache is recorded
    /// (shared, so reuse across epochs never copies the list).
    touched: Arc<[VertexId]>,
    /// `false` when the enumeration hit its embedding budget.
    complete: bool,
    /// `true` when the value came out of the prior epoch's cache.
    reused: bool,
    /// The certified interval + certificate, in bounds-first mode only.
    interval: Option<ffsm_approx::SupportInterval>,
    certificate: Option<ffsm_approx::Certificate>,
    /// `true` when the bounds evaluator ran for this candidate.
    bounded: bool,
    /// `true` when a certified interval decided the candidate without an exact
    /// support computation.
    bound_decided: bool,
    /// Nanoseconds spent computing bounds (0 unless fine-grained metrics are on).
    bounds_nanos: u64,
}

impl Default for EvalOutcome {
    fn default() -> Self {
        EvalOutcome {
            support: 0.0,
            num_occurrences: 0,
            touched: Arc::from(Vec::new()),
            complete: false,
            reused: false,
            interval: None,
            certificate: None,
            bounded: false,
            bound_decided: false,
            bounds_nanos: 0,
        }
    }
}

/// Evaluate the support of every candidate, in order, on `threads` workers.
///
/// Candidates are split round-robin and merged back in candidate order, so the result
/// does not depend on the thread count.  `index` is the prepared graph's shared
/// matching index (`None` under the naive enumerator backend), consulted read-only by
/// every worker so no candidate evaluation rebuilds it.
///
/// Under [`CacheMode::Delta`] a candidate whose occurrences provably avoid the
/// dirty region (see the `delta` module docs for the argument) is answered from
/// the prior epoch's cache without enumerating anything; the decision is
/// per-candidate and deterministic, so the thread partition still never changes
/// the result.
///
/// `arenas` holds one reusable [`SearchArena`] per worker (at least
/// `config.threads` of them), owned by the engine state so the search buffers
/// survive across levels — thousands of pattern evaluations share
/// `config.threads` allocations instead of allocating each.
#[allow(clippy::too_many_arguments)]
fn evaluate_level(
    prepared: &PreparedGraph,
    index: Option<&GraphIndex>,
    candidates: &[(Pattern, CanonicalCode)],
    parent_hi: &[f64],
    label_counts: &[(ffsm_graph::Label, usize)],
    measure: &Arc<dyn SupportMeasure>,
    config: &EngineConfig,
    mode: &CacheMode,
    arenas: &mut [SearchArena],
) -> (Vec<EvalOutcome>, tls::ThreadTotals) {
    let graph = prepared.graph();
    let bounds = config.bounds.as_deref();
    let evaluate = |i: usize,
                    (pattern, code): &(Pattern, CanonicalCode),
                    arena: &mut SearchArena|
     -> EvalOutcome {
        if let CacheMode::Delta(ctx) = mode {
            if let Some(cached) = ctx.prior.get(code) {
                if cached.complete
                    && !sorted_intersects(&cached.touched, &ctx.dirty_old)
                    && !occurrences_touch(pattern, graph, &config.iso_config, &ctx.dirty_new)
                {
                    return EvalOutcome {
                        support: cached.support,
                        num_occurrences: cached.num_occurrences,
                        touched: cached.touched.clone(),
                        complete: true,
                        reused: true,
                        ..EvalOutcome::default()
                    };
                }
            }
        }
        // Bounds-first stage 1: a certified pre-enumeration cap (parent bound,
        // index cardinality) can decide the candidate before a single
        // occurrence is enumerated.
        let mut bounds_nanos = 0u64;
        let mut pre = None;
        if let Some(evaluator) = bounds {
            let clock = config.metrics.then(Instant::now);
            let outcome = evaluator.pre_bounds(
                pattern,
                label_counts,
                index,
                parent_hi.get(i).copied().unwrap_or(f64::INFINITY),
            );
            if let Some(clock) = clock {
                bounds_nanos += clock.elapsed().as_nanos() as u64;
            }
            if let Some(frequent) = outcome.decision {
                return EvalOutcome {
                    support: if frequent { outcome.interval.lo } else { outcome.interval.hi },
                    complete: true,
                    interval: Some(outcome.interval),
                    certificate: Some(outcome.certificate),
                    bounded: true,
                    bound_decided: true,
                    bounds_nanos,
                    ..EvalOutcome::default()
                };
            }
            pre = Some(outcome);
        }
        let occ = match index {
            Some(index) => OccurrenceSet::enumerate_with_arena(
                pattern,
                graph,
                index,
                config.iso_config.clone(),
                arena,
            ),
            None => OccurrenceSet::enumerate(pattern, graph, config.iso_config.clone()),
        };
        let touched: Arc<[VertexId]> = if mode.caching() {
            let mut t: Vec<VertexId> = (0..occ.num_images()).map(|i| occ.image_vertex(i)).collect();
            t.sort_unstable();
            Arc::from(t)
        } else {
            Arc::from(Vec::new())
        };
        // Bounds-first stage 2: containment chain, greedy packing and the LP
        // envelope can still short-circuit the expensive exact solve.  Every
        // bound is a function of the enumerated occurrence set, so the verdict
        // brackets exactly the value the exact path would compute on it.
        if let (Some(evaluator), Some(pre)) = (bounds, pre.as_ref()) {
            if evaluator.post_stage() {
                let clock = config.metrics.then(Instant::now);
                let post = evaluator.post_bounds(&occ, pre);
                if let Some(clock) = clock {
                    bounds_nanos += clock.elapsed().as_nanos() as u64;
                }
                if let Some(frequent) = post.decision {
                    return EvalOutcome {
                        support: if frequent { post.interval.lo } else { post.interval.hi },
                        num_occurrences: occ.num_occurrences(),
                        touched,
                        complete: occ.is_complete(),
                        reused: false,
                        interval: Some(post.interval),
                        certificate: Some(post.certificate),
                        bounded: true,
                        bound_decided: true,
                        bounds_nanos,
                    };
                }
            }
        }
        let support = measure.support(&occ);
        let (interval, certificate, bounded) = match bounds {
            Some(evaluator) => {
                let exact = evaluator.exact(support);
                (Some(exact.interval), Some(exact.certificate), true)
            }
            None => (None, None, false),
        };
        EvalOutcome {
            support,
            num_occurrences: occ.num_occurrences(),
            touched,
            complete: occ.is_complete(),
            reused: false,
            interval,
            certificate,
            bounded,
            bound_decided: false,
            bounds_nanos,
        }
    };
    let workers = config.threads.min(candidates.len());
    if workers <= 1 {
        let (arena, _) = arenas.split_first_mut().expect("at least one arena");
        let before = tls::snapshot();
        let results = candidates.iter().enumerate().map(|(i, c)| evaluate(i, c, arena)).collect();
        return (results, tls::snapshot().delta_since(&before));
    }
    let mut results = vec![EvalOutcome::default(); candidates.len()];
    // Per-thread observability totals (overlap probes/build time) are sampled
    // around each worker's slice and summed — each candidate's contribution is
    // deterministic, so the sum never depends on the partition.
    let mut measure_totals = tls::ThreadTotals::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, arena) in arenas[..workers].iter_mut().enumerate() {
            let evaluate = &evaluate;
            handles.push(scope.spawn(move || {
                let before = tls::snapshot();
                let slice = candidates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % workers == w)
                    .map(|(i, p)| (i, evaluate(i, p, arena)))
                    .collect::<Vec<(usize, EvalOutcome)>>();
                (slice, tls::snapshot().delta_since(&before))
            }));
        }
        for handle in handles {
            let (slice, delta) = handle.join().expect("mining worker panicked");
            measure_totals.overlap_probes += delta.overlap_probes;
            measure_totals.overlap_build_nanos += delta.overlap_build_nanos;
            for (i, r) in slice {
                results[i] = r;
            }
        }
    });
    (results, measure_totals)
}

/// Insert `found` into the running top-k list (sorted by descending support, ties by
/// fewer edges first) and return the updated rising threshold.  Shared with the
/// sharded engine so the two top-k modes stay semantically identical.
pub(crate) fn insert_top_k(
    best: &mut Vec<FrequentPattern>,
    found: FrequentPattern,
    k: usize,
    floor: f64,
) -> f64 {
    best.push(found);
    best.sort_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pattern.num_edges().cmp(&b.pattern.num_edges()))
    });
    if best.len() > k {
        best.truncate(k);
    }
    if best.len() == k {
        best.last().map(|p| p.support).unwrap_or(floor).max(floor)
    } else {
        floor
    }
}

/// The resumable mining loop: owned state, one level per [`EngineState::step`].
pub(crate) struct EngineState {
    prepared: PreparedGraph,
    measure: Arc<dyn SupportMeasure>,
    config: EngineConfig,
    /// The prepared graph's shared index (`None` under the naive backend; `Auto`
    /// needs it both for the candidate-space runs it resolves to and for the
    /// per-pattern heuristic itself).
    index: Option<Arc<GraphIndex>>,
    /// One reusable search arena per worker thread, surviving across levels.
    arenas: Vec<SearchArena>,
    seen: HashSet<CanonicalCode>,
    frequent: Vec<FrequentPattern>,
    threshold: f64,
    floor: f64,
    level: Vec<(Pattern, CanonicalCode)>,
    /// Parallel to `level`: each candidate's inherited upper bound (the parent's
    /// certified `hi`, `+∞` for seeds).  Only meaningful in bounds-first mode;
    /// empty otherwise.
    level_parent_hi: Vec<f64>,
    /// Per-label vertex counts of the data graph, for the bounds evaluator's
    /// index-free cardinality cap (empty outside bounds-first mode).
    label_counts: Vec<(ffsm_graph::Label, usize)>,
    /// Candidates a bounds-first run left undecided at an interruption.
    undecided: Vec<UndecidedPattern>,
    stats: MiningStats,
    start: Instant,
    /// Set exactly once, when the run stops.
    completion: Option<Completion>,
    /// `true` when no consumer reads per-pattern/per-level events (the batch
    /// `run()` path): [`EngineState::step`] then skips materialising them, so a
    /// batch run pays no clone-per-pattern event tax.  The final `Finished` event
    /// is always pushed — the stream machinery keys off it.
    quiet: bool,
    /// Cache interaction: off for plain runs, recording for `run_recorded`,
    /// recording + reuse for `run_delta`.
    mode: CacheMode,
    /// The cache recorded by this run (empty under [`CacheMode::Off`]).
    cache_out: EvalCache,
    /// Engine-level phase accounting (index build, per-level support eval,
    /// extension, overlap build) — merged with the arenas' fine-grained spans
    /// into `stats.phase_timings` on every refresh.
    engine_phase: PhaseTimes,
}

impl EngineState {
    /// Seed the state machine.  Cheap: no support is evaluated until the first
    /// [`EngineState::step`] (the prepared graph's index is resolved here, which is
    /// a shared lazy build — amortised to zero across sessions).
    pub(crate) fn new(
        prepared: PreparedGraph,
        measure: Arc<dyn SupportMeasure>,
        config: EngineConfig,
        quiet: bool,
        mode: CacheMode,
    ) -> Self {
        let index_start = Instant::now();
        let index = match config.iso_config.backend {
            ffsm_core::EnumeratorBackend::CandidateSpace | ffsm_core::EnumeratorBackend::Auto => {
                Some(prepared.index())
            }
            ffsm_core::EnumeratorBackend::Naive => None,
        };
        let mut engine_phase = PhaseTimes::new();
        engine_phase.record(Phase::IndexBuild, index_start.elapsed());
        let mut arenas: Vec<SearchArena> =
            (0..config.threads.max(1)).map(|_| SearchArena::new()).collect();
        if config.metrics {
            for arena in &mut arenas {
                arena.set_timing(true);
            }
        }
        let mut stats = MiningStats { phase_timings: engine_phase, ..MiningStats::default() };
        let mut seen = HashSet::new();
        let seeds = seed_patterns(prepared.graph());
        stats.candidates_generated += seeds.len();
        let level = dedupe_with_codes(seeds, &mut seen);
        let level_parent_hi =
            if config.bounds.is_some() { vec![f64::INFINITY; level.len()] } else { Vec::new() };
        let label_counts =
            if config.bounds.is_some() { prepared.graph().label_histogram() } else { Vec::new() };
        let threshold = config.min_support;
        EngineState {
            prepared,
            measure,
            floor: threshold,
            threshold,
            config,
            index,
            arenas,
            seen,
            frequent: Vec::new(),
            level,
            level_parent_hi,
            label_counts,
            undecided: Vec::new(),
            stats,
            start: Instant::now(),
            completion: None,
            quiet,
            mode,
            cache_out: EvalCache::default(),
            engine_phase,
        }
    }

    /// Recompute the stats' observability block from the cumulative per-arena
    /// counters/spans and the engine-level phase accounting.  Cheap (a few adds
    /// per arena), called once per level and at finish.
    fn refresh_observability(&mut self) {
        let mut search = SearchCounters::default();
        let mut timings = self.engine_phase;
        let mut peak = 0u64;
        for arena in &self.arenas {
            search.merge(&arena.counters());
            timings.merge(&arena.phase_times());
            peak = peak.max(arena.footprint_bytes() as u64);
        }
        self.stats.counters.search = search;
        self.stats.counters.arena_peak_bytes = peak;
        self.stats.phase_timings = timings;
    }

    /// `Some(c)` once the run has stopped (the `Finished` event has been pushed).
    pub(crate) fn completion(&self) -> Option<Completion> {
        self.completion
    }

    /// Which interruption, if any, has fired.  Explicit cancellation wins over the
    /// deadline when both have.
    fn interrupted(&self) -> Option<Completion> {
        if self.config.cancel.cancel_requested() {
            return Some(Completion::Cancelled);
        }
        if self.config.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(Completion::DeadlineExceeded);
        }
        None
    }

    /// Stop the run: stamp the stats and push the final `Finished` event.  A
    /// bounds-first run interrupted by deadline or cancellation first reports
    /// every still-pending candidate as [`MiningEvent::Undecided`], with a
    /// certified interval from pre-enumeration arguments only — never from a
    /// possibly truncated enumeration.
    fn finish(&mut self, completion: Completion, out: &mut VecDeque<MiningEvent>) {
        if matches!(completion, Completion::DeadlineExceeded | Completion::Cancelled) {
            if let Some(evaluator) = self.config.bounds.clone() {
                let index = self.index.clone();
                let parent_hi = std::mem::take(&mut self.level_parent_hi);
                for (i, (pattern, _)) in std::mem::take(&mut self.level).into_iter().enumerate() {
                    let inherited = parent_hi.get(i).copied().unwrap_or(f64::INFINITY);
                    let pre = evaluator.pre_bounds(
                        &pattern,
                        &self.label_counts,
                        index.as_deref(),
                        inherited,
                    );
                    let undecided = UndecidedPattern {
                        pattern,
                        interval: pre.interval,
                        certificate: pre.certificate,
                    };
                    if !self.quiet {
                        out.push_back(MiningEvent::Undecided(undecided.clone()));
                    }
                    self.undecided.push(undecided);
                }
            }
        }
        self.refresh_observability();
        self.stats.elapsed = self.start.elapsed();
        self.stats.completion = completion;
        self.completion = Some(completion);
        out.push_back(MiningEvent::Finished(RunSummary {
            completion,
            final_threshold: self.threshold,
            num_patterns: self.frequent.len(),
            num_undecided: self.undecided.len(),
            stats: self.stats.clone(),
        }));
    }

    /// Process one pattern-growth level, pushing every resulting event (quiet
    /// mode pushes only the final `Finished`).  Must not be called after the run
    /// has finished.
    pub(crate) fn step(&mut self, out: &mut VecDeque<MiningEvent>) {
        debug_assert!(self.completion.is_none(), "step() after Finished");
        if self.level.is_empty() {
            self.finish(Completion::Complete, out);
            return;
        }
        if let Some(interrupt) = self.interrupted() {
            self.finish(interrupt, out);
            return;
        }

        // Respect the evaluation cap by trimming the level.
        let mut budget_hit: Option<BudgetKind> = None;
        let remaining = self.config.max_evaluations.saturating_sub(self.stats.candidates_evaluated);
        if self.level.len() > remaining {
            self.level.truncate(remaining);
            self.level_parent_hi.truncate(remaining);
            budget_hit = Some(BudgetKind::Evaluations);
        }
        if self.level.is_empty() {
            self.finish(Completion::BudgetExhausted(BudgetKind::Evaluations), out);
            return;
        }

        let eval_start = Instant::now();
        let (outcomes, measure_totals) = evaluate_level(
            &self.prepared,
            self.index.as_deref(),
            &self.level,
            &self.level_parent_hi,
            &self.label_counts,
            &self.measure,
            &self.config,
            &self.mode,
            &mut self.arenas,
        );
        self.engine_phase.record(Phase::SupportEval, eval_start.elapsed());
        self.engine_phase.add_nanos(Phase::OverlapBuild, measure_totals.overlap_build_nanos);
        self.stats.counters.overlap_probes += measure_totals.overlap_probes;
        // An interruption during the evaluation may have truncated enumerations
        // arbitrarily; discard the whole level so the emitted patterns stay a
        // deterministic prefix of the full run (and never enter the cache).
        if let Some(interrupt) = self.interrupted() {
            self.finish(interrupt, out);
            return;
        }
        let evaluated = self.level.len();
        self.stats.candidates_evaluated += evaluated;

        // Fold the bounds-stage observability into the run stats (the span is
        // nested inside SupportEval, so it is additive, not exclusive).
        if self.config.bounds.is_some() {
            let mut bounds_nanos = 0u64;
            for outcome in &outcomes {
                self.stats.counters.evaluations_bounded += outcome.bounded as u64;
                self.stats.counters.bound_decided += outcome.bound_decided as u64;
                bounds_nanos += outcome.bounds_nanos;
            }
            self.engine_phase.add_nanos(Phase::BoundsEval, bounds_nanos);
        }

        // Apply the (possibly rising) threshold in candidate order.  Each
        // survivor carries its certified upper bound forward: by
        // anti-monotonicity it caps every child in the next level.
        let mut accepted = 0usize;
        let mut survivors: Vec<(Pattern, f64)> = Vec::new();
        self.level_parent_hi.clear();
        for ((pattern, code), outcome) in std::mem::take(&mut self.level).into_iter().zip(outcomes)
        {
            let EvalOutcome {
                support,
                num_occurrences,
                touched,
                complete,
                reused,
                interval,
                certificate,
                ..
            } = outcome;
            if reused {
                self.stats.evaluations_reused += 1;
            }
            if self.mode.caching() {
                self.cache_out
                    .insert(code, CachedEval { support, num_occurrences, touched, complete });
            }
            let child_hi = interval.map_or(support, |iv| iv.hi);
            match self.config.top_k {
                None => {
                    if support >= self.threshold {
                        if self.frequent.len() >= self.config.max_patterns {
                            budget_hit.get_or_insert(BudgetKind::Patterns);
                            continue;
                        }
                        let found = FrequentPattern {
                            pattern: pattern.clone(),
                            support,
                            num_occurrences,
                            support_interval: interval,
                            certificate,
                        };
                        if !self.quiet {
                            out.push_back(MiningEvent::Pattern(found.clone()));
                        }
                        self.stats.counters.patterns_emitted += 1;
                        self.frequent.push(found);
                        accepted += 1;
                        survivors.push((pattern, child_hi));
                    } else {
                        self.stats.candidates_pruned += 1;
                    }
                }
                Some(k) => {
                    if support >= self.threshold {
                        let found = FrequentPattern {
                            pattern: pattern.clone(),
                            support,
                            num_occurrences,
                            support_interval: interval,
                            certificate,
                        };
                        if !self.quiet {
                            out.push_back(MiningEvent::Pattern(found.clone()));
                        }
                        self.stats.counters.patterns_emitted += 1;
                        self.threshold = insert_top_k(&mut self.frequent, found, k, self.floor);
                        accepted += 1;
                        survivors.push((pattern, child_hi));
                    } else {
                        self.stats.candidates_pruned += 1;
                    }
                }
            }
        }
        self.stats.levels_completed += 1;
        self.refresh_observability();
        if !self.quiet {
            out.push_back(MiningEvent::LevelCompleted(LevelSummary {
                level: self.stats.levels_completed,
                evaluated,
                accepted,
                threshold: self.threshold,
                stats: self.stats.clone(),
            }));
        }
        if let Some(kind) = budget_hit {
            self.finish(Completion::BudgetExhausted(kind), out);
            return;
        }

        // Next level: one-edge extensions of every surviving pattern.  Pruned
        // candidates are never extended — sound because the measure is anti-monotone.
        let extension_start = Instant::now();
        let bounds_on = self.config.bounds.is_some();
        let mut next: Vec<(Pattern, CanonicalCode)> = Vec::new();
        let mut next_parent_hi: Vec<f64> = Vec::new();
        for (pattern, hi) in &survivors {
            if pattern.num_edges() >= self.config.max_pattern_edges {
                continue;
            }
            let candidates = extensions(pattern, self.prepared.alphabet());
            self.stats.candidates_generated += candidates.len();
            next.extend(dedupe_with_codes(candidates, &mut self.seen));
            if bounds_on {
                next_parent_hi.resize(next.len(), *hi);
            }
        }
        self.engine_phase.record(Phase::Extension, extension_start.elapsed());
        self.level = next;
        self.level_parent_hi = next_parent_hi;
    }

    /// Tear the state down into the batch result.  Only meaningful once the run
    /// has finished (callers drain the stream first).
    pub(crate) fn into_result(mut self) -> MiningResult {
        if self.completion.is_none() {
            // Defensive: a result must always carry a stamped completion.
            self.stats.elapsed = self.start.elapsed();
        }
        MiningResult {
            patterns: self.frequent,
            final_threshold: self.threshold,
            undecided: self.undecided,
            stats: self.stats,
        }
    }

    /// Like [`EngineState::into_result`], also handing back the [`EvalCache`]
    /// this run recorded (empty under [`CacheMode::Off`]).  An interrupted run's
    /// cache covers the completed levels only — feeding it forward is sound, the
    /// next delta run simply re-evaluates the uncovered patterns.
    pub(crate) fn into_result_and_cache(mut self) -> (MiningResult, EvalCache) {
        let cache = std::mem::take(&mut self.cache_out);
        (self.into_result(), cache)
    }
}
