//! No-op `Serialize` / `Deserialize` derives for the vendored serde marker traits.
//!
//! Each derive emits an empty marker-trait impl for the annotated type.  Plain
//! (non-generic) structs and enums are supported, which covers every annotated type
//! in this workspace; deriving on a generic type is a compile error here rather than
//! a silent misbehaviour.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct` / `enum` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut tokens = input.clone().into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if matches!(tokens.next(), Some(TokenTree::Punct(p)) if p.as_char() == '<')
                        {
                            panic!("serde shim derives do not support generic types");
                        }
                        return name.to_string();
                    }
                    other => panic!("serde shim derive: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("serde shim derive: no struct or enum found in input");
}

/// Emit `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().expect("generated impl parses")
}

/// Emit `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
