//! # ffsm-shard — partitioned data graphs for out-of-core mining
//!
//! Splits a [`LabeledGraph`](ffsm_graph::LabeledGraph) into `K` shards so that
//! occurrence enumeration can run **per shard** with the whole-graph matcher
//! machinery unchanged, and so that shards that are not currently being mined
//! can be spilled to disk — the property that makes graphs larger than RAM
//! mineable at all.
//!
//! ## The halo invariant
//!
//! A [`PartitionSpec`] assigns every vertex to exactly one shard's *interior*
//! (by contiguous vertex range or label-aware greedy packing).  Each shard then
//! materialises the induced subgraph over
//!
//! ```text
//! V_i  =  { v : dist_G(v, interior_i) <= halo_depth }
//! ```
//!
//! — the interior plus a *halo* of every vertex within `halo_depth` hops of it.
//! A connected pattern with `e <= halo_depth` edges has diameter at most `e`,
//! so **every embedding whose minimum image vertex (its anchor) lies in
//! `interior_i` is entirely contained in shard `i`**: each image vertex is
//! reachable from the anchor along at most `e` pattern-edge images.  Because the
//! shard is an *induced* subgraph, both edges and non-edges among its vertices
//! agree with the global graph, so non-induced and induced isomorphism semantics
//! are preserved verbatim.
//!
//! ## The anchor-shard dedup rule
//!
//! An embedding that lies entirely inside the halo overlap of several shards is
//! enumerated by each of them.  The driver keeps a per-shard embedding iff the
//! shard *owns* the embedding's anchor — `assignment[min global image] == i`.
//! Every global embedding has exactly one anchor and every anchor is interior to
//! exactly one shard, so the union over shards of the kept embeddings is exactly
//! the global embedding list, each exactly once.
//!
//! ## Spill
//!
//! [`PartitionedGraph::spill_to_disk`] writes every shard to a plain text shard
//! file and caps residency at `max_resident` shards, evicted LRU.  Shards are
//! immutable after build, so eviction is a pure drop — no write-back.  The
//! store's resident-byte gauge is the peak-RSS proxy the shard bench asserts on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod partition;
mod store;

pub use partition::{PartitionSpec, PartitionStrategy, PartitionedGraph, ResidentShard};
pub use store::{ShardStore, ShardStoreStats};
