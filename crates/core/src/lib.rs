//! # ffsm-core — the hypergraph support-measure framework
//!
//! This crate implements the contribution of *"Flexible and Feasible Support Measures
//! for Mining Frequent Patterns in Large Labeled Graphs"* (SIGMOD 2017):
//!
//! * [`occurrences`] — enumeration of a pattern's occurrences and instances in a data
//!   graph, and their **occurrence / instance hypergraphs** (Definitions 3.1.3 and
//!   3.1.4);
//! * [`measures`] — the support measures studied by the paper:
//!   * `MNI` — minimum-image-based support (Bringmann & Nijssen, Definition 2.2.8) and
//!     its parameterised variant `MNI-k` (Definition 2.2.9),
//!   * `MI` — minimum instance support over coarse-grained / transitive node subsets
//!     (Definition 3.2.4), with configurable subset strategies,
//!   * `MVC` — minimum-vertex-cover support of the occurrence hypergraph
//!     (Definition 3.3.2), exact and k-approximate,
//!   * `MIS` — the classic overlap-graph maximum-independent-set support
//!     (Definition 2.2.7),
//!   * `MIES` — maximum independent edge set of the hypergraph (Definition 4.2.1),
//!   * `νMVC` / `νMIES` — the polynomial-time LP relaxations (Definitions 4.3.1 and
//!     4.3.2);
//! * [`overlap`] — simple, harmful and structural overlap (Section 4.5) and
//!   overlap-graph construction under each notion;
//! * [`bounds`] — the bounding chain of Section 4.4,
//!   `σMIS = σMIES ≤ νMIES = νMVC ≤ σMVC ≤ σMI ≤ σMNI`, as a checked report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod decompose;
pub mod error;
pub mod measures;
pub mod occurrences;
pub mod overlap;
pub mod profile;

pub use bounds::{verify_bounding_chain, BoundsReport};
pub use decompose::{DecomposedOutcome, DecompositionConfig};
pub use error::FfsmError;
// Occurrence enumeration is dispatched to the candidate-space engine of
// `ffsm-match` (see `IsoConfig::backend`); the per-graph index, the backend tag
// and the cancellation token are re-exported so downstream crates (the miner, the
// CLI) need no direct dependency to share one index across patterns or to plumb
// cooperative cancellation into the enumerators.
pub use ffsm_graph::isomorphism::EnumeratorBackend;
pub use ffsm_graph::CancelToken;
// The dynamic-graph update vocabulary is re-exported for the same reason: the
// miner's delta-aware mode and the `ffsm-dynamic` store speak these types.
pub use ffsm_graph::{GraphDelta, GraphUpdate, UpdateError};
pub use ffsm_match::{GraphIndex, SearchArena};
// Raw embedding enumeration (without the `OccurrenceSet` wrapper) is what the
// partitioned miner needs: per-shard embeddings are remapped to global ids and
// merged *before* one occurrence set is built, so the hypergraph and the support
// value are computed over the exact global occurrence list.
pub use ffsm_graph::isomorphism::EnumerationResult;
pub use ffsm_match::enumerate_with;
pub use measures::{
    MeasureConfig, MeasureKind, MiStrategy, MvcAlgorithm, SupportMeasure, SupportMeasures,
};
pub use occurrences::{HypergraphBasis, Instance, OccurrenceSet};
pub use overlap::{
    OverlapAnalysis, OverlapBuild, OverlapCache, OverlapCensus, OverlapConfig, OverlapKind,
};
pub use profile::{MeasureProfile, ProfileEntry};

use ffsm_graph::{LabeledGraph, Pattern};

/// Convenience one-shot evaluation: enumerate occurrences of `pattern` in `graph` and
/// compute the requested measure with the given configuration.
///
/// This is the entry point used by the miner and by most examples; for repeated
/// measurements over the same pattern/graph pair build a [`SupportMeasures`] once and
/// query it instead.
///
/// ```
/// use ffsm_core::{evaluate, MeasureConfig, MeasureKind};
/// use ffsm_graph::{patterns, Label, LabeledGraph};
///
/// // The paper's Figure 4: path data graph A-B-B-A, pattern A-B-B.
/// let graph = LabeledGraph::from_edges(&[0, 1, 1, 0], &[(0, 1), (1, 2), (2, 3)]);
/// let pattern = patterns::path(&[Label(0), Label(1), Label(1)]);
/// let config = MeasureConfig::default();
/// assert_eq!(evaluate(&pattern, &graph, MeasureKind::Mni, &config), 2.0);
/// assert_eq!(evaluate(&pattern, &graph, MeasureKind::Mi, &config), 1.0);
/// ```
pub fn evaluate(
    pattern: &Pattern,
    graph: &LabeledGraph,
    kind: MeasureKind,
    config: &MeasureConfig,
) -> f64 {
    let occ = OccurrenceSet::enumerate(pattern, graph, config.iso_config.clone());
    let measures = SupportMeasures::new(occ, config.clone());
    measures.compute(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::figures;

    #[test]
    fn one_shot_evaluate_matches_calculator() {
        let f = figures::figure4();
        let config = MeasureConfig::default();
        let direct = evaluate(&f.pattern, &f.graph, MeasureKind::Mni, &config);
        let occ = OccurrenceSet::enumerate(&f.pattern, &f.graph, config.iso_config.clone());
        let calc = SupportMeasures::new(occ, config);
        assert_eq!(direct, calc.compute(MeasureKind::Mni));
        assert_eq!(direct, 2.0);
    }
}
