//! Scaling of occurrence enumeration and end-to-end measure evaluation with data-graph
//! size (supports experiment E3/E4's "large labeled graph" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffsm_bench::workloads;
use ffsm_core::evaluate;
use ffsm_core::measures::{MeasureConfig, MeasureKind};
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_graph::{generators, patterns, Label};
use std::hint::black_box;
use std::time::Duration;

fn bench_enumeration_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    let pattern = patterns::uniform_path(3, Label(0));
    for &n in &[200usize, 400, 800] {
        let graph = generators::barabasi_albert(n, 3, 2, 17);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("ba_graph_path3", n), &n, |b, _| {
            b.iter(|| {
                black_box(workloads::enumerate(&pattern, &graph, 500_000).num_occurrences())
            })
        });
    }
    group.finish();
}

fn bench_end_to_end_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_measure");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    let graph = generators::community_graph(4, 30, 0.2, 0.01, 4, 23);
    let pattern = patterns::path(&[Label(0), Label(1), Label(0)]);
    let config = MeasureConfig { iso_config: IsoConfig::with_limit(200_000), ..Default::default() };
    for kind in [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc, MeasureKind::Mies, MeasureKind::RelaxedMvc] {
        group.bench_function(BenchmarkId::new("community_graph", kind.name()), |b| {
            b.iter(|| black_box(evaluate(&pattern, &graph, kind, &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration_scaling, bench_end_to_end_measures);
criterion_main!(benches);
