//! # ffsm-bench — workloads and reporting helpers shared by the experiment harness
//! and the Criterion benchmarks.
//!
//! The experiment identifiers (E1…E14) are defined in `DESIGN.md` §4; the `experiments`
//! binary regenerates every table recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod workloads;

use std::time::{Duration, Instant};

/// Run `f` once and return its result together with the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// The value following `flag` in a raw argument list (`--flag value`), shared by
/// every bench binary's argument parsing.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Format a `Duration` with a sensible unit for tables.
pub fn format_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}us")
    } else if micros < 1_000_000 {
        format!("{:.2}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_micros(5)), "5us");
        assert_eq!(format_duration(Duration::from_micros(2_500)), "2.50ms");
        assert_eq!(format_duration(Duration::from_millis(1_500)), "1.50s");
    }

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
