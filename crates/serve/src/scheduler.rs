//! [`SessionScheduler`] — a fixed worker pool with bounded admission and
//! graceful drain.
//!
//! Mining is CPU-bound, so the server never runs it on connection threads:
//! admitted sessions queue onto a pool sized to the machine.  The queue is
//! *bounded* — when it fills, [`SessionScheduler::submit`] fails fast with
//! [`FfsmError::Overloaded`] (the wire maps it to a typed rejection frame)
//! instead of buffering unbounded work the server cannot finish.
//!
//! Every admitted session registers its [`CancelToken`] in an in-flight table
//! for the duration of the job.  [`SessionScheduler::shutdown`] drains
//! gracefully: new submissions are refused with [`FfsmError::ShuttingDown`],
//! every registered token is cancelled (in-flight sessions stop at the next
//! level boundary and still emit their terminal frame), queued-but-unstarted
//! jobs run with their token already cancelled (so their clients get a
//! `cancelled` completion, not silence), and the pool is joined.

use ffsm_core::FfsmError;
use ffsm_graph::CancelToken;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// In-flight session table shared by submitters, workers and `shutdown`.
#[derive(Debug, Default)]
struct Inflight {
    tokens: Mutex<HashMap<u64, CancelToken>>,
    next_id: AtomicU64,
    draining: AtomicBool,
}

impl Inflight {
    /// Register `token`; if a drain already started, cancel it immediately so
    /// the racing session observes the shutdown (closing the submit/shutdown
    /// window).  Returns the table key.
    fn register(&self, token: &CancelToken) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.tokens.lock().expect("inflight lock poisoned").insert(id, token.clone());
        if self.draining.load(Ordering::SeqCst) {
            token.cancel();
        }
        id
    }

    fn deregister(&self, id: u64) {
        self.tokens.lock().expect("inflight lock poisoned").remove(&id);
    }

    fn cancel_all(&self) {
        for token in self.tokens.lock().expect("inflight lock poisoned").values() {
            token.cancel();
        }
    }
}

/// Counters the server surfaces in `stat` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Sessions admitted onto the queue.
    pub admitted: u64,
    /// Sessions refused with [`FfsmError::Overloaded`].
    pub rejected: u64,
    /// Sessions whose job ran to the end (any completion).
    pub finished: u64,
    /// Sessions registered right now (queued or running).
    pub inflight: usize,
}

/// The serving pool.  See the [module docs](self).
#[derive(Debug)]
pub struct SessionScheduler {
    /// `None` once `shutdown` has disconnected the queue.
    sender: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    inflight: Arc<Inflight>,
    capacity: usize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    finished: Arc<AtomicU64>,
}

impl SessionScheduler {
    /// A pool of `workers` threads (clamped to ≥ 1) admitting at most
    /// `queue_capacity` queued sessions (clamped to ≥ 1) beyond the running
    /// ones.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let capacity = queue_capacity.max(1);
        let (sender, receiver) = sync_channel::<Job>(capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let finished = Arc::new(AtomicU64::new(0));
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let finished = Arc::clone(&finished);
                std::thread::Builder::new()
                    .name(format!("ffsm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &finished))
                    .expect("spawning scheduler worker")
            })
            .collect();
        SessionScheduler {
            sender: Mutex::new(Some(sender)),
            workers: Mutex::new(handles),
            inflight: Arc::new(Inflight::default()),
            capacity,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            finished,
        }
    }

    /// Admit a session: register `token` as in-flight and queue `job`.  The
    /// job runs on a worker thread; the token stays registered (visible to
    /// `shutdown`) until the job returns.
    ///
    /// # Errors
    ///
    /// [`FfsmError::Overloaded`] when the queue is full;
    /// [`FfsmError::ShuttingDown`] once a drain has started.
    pub fn submit(
        &self,
        token: &CancelToken,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), FfsmError> {
        if self.inflight.draining.load(Ordering::SeqCst) {
            return Err(FfsmError::ShuttingDown);
        }
        let id = self.inflight.register(token);
        let inflight = Arc::clone(&self.inflight);
        let wrapped: Job = Box::new(move || {
            job();
            inflight.deregister(id);
        });
        let sender = self.sender.lock().expect("sender lock poisoned");
        let result = match sender.as_ref() {
            Some(sender) => sender.try_send(wrapped),
            None => return Err(FfsmError::ShuttingDown),
        };
        match result {
            Ok(()) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.inflight.deregister(id);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(FfsmError::Overloaded { capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.inflight.deregister(id);
                Err(FfsmError::ShuttingDown)
            }
        }
    }

    /// Cancel every in-flight session without refusing new work.  Each
    /// session stops at its next cancellation poll and emits its terminal
    /// frame as usual.
    pub fn cancel_all(&self) {
        self.inflight.cancel_all();
    }

    /// Graceful drain: refuse new sessions, cancel in-flight ones, then join
    /// the pool once every queued job has flushed its terminal frame.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.inflight.draining.store(true, Ordering::SeqCst);
        self.inflight.cancel_all();
        // Disconnect the queue: workers finish what is queued, then exit.
        drop(self.sender.lock().expect("sender lock poisoned").take());
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// `true` once `shutdown` has started.
    pub fn is_draining(&self) -> bool {
        self.inflight.draining.load(Ordering::SeqCst)
    }

    /// Admission queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
            inflight: self.inflight.tokens.lock().expect("inflight lock poisoned").len(),
        }
    }
}

impl Drop for SessionScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, finished: &AtomicU64) {
    loop {
        // Hold the lock only to dequeue, never while running a job.
        let job = match receiver.lock().expect("receiver lock poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // queue disconnected and drained
        };
        // A panicking session must not shrink the pool; the wire layer has
        // already classified the failure for the client by the time it
        // unwinds, so containment is all that is left to do.
        let _ = catch_unwind(AssertUnwindSafe(job));
        finished.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    /// A job that blocks until released, so tests control queue occupancy.
    fn blocking_job(release: Arc<Mutex<Receiver<()>>>) -> impl FnOnce() + Send + 'static {
        move || {
            let _ = release.lock().unwrap().recv_timeout(Duration::from_secs(10));
        }
    }

    #[test]
    fn overflow_is_a_typed_rejection() {
        let scheduler = SessionScheduler::new(1, 1);
        let (release, gate) = channel();
        let gate = Arc::new(Mutex::new(gate));
        let token = CancelToken::new();
        // Occupy the single worker, then the single queue slot.
        scheduler.submit(&token, blocking_job(Arc::clone(&gate))).unwrap();
        // The worker may not have dequeued yet; admission capacity is
        // queue + workers, so fill until the first rejection.
        let mut admitted = 1;
        let err = loop {
            match scheduler.submit(&token, blocking_job(Arc::clone(&gate))) {
                Ok(()) => admitted += 1,
                Err(err) => break err,
            }
        };
        assert!(matches!(err, FfsmError::Overloaded { capacity: 1 }));
        assert!(admitted <= 2, "one running + one queued at most");
        assert_eq!(scheduler.stats().rejected, 1);
        for _ in 0..admitted {
            release.send(()).unwrap();
        }
        scheduler.shutdown();
        assert_eq!(scheduler.stats().finished, admitted as u64);
    }

    #[test]
    fn shutdown_cancels_inflight_and_refuses_new_work() {
        let scheduler = SessionScheduler::new(2, 4);
        let token = CancelToken::new();
        let (started_tx, started) = channel();
        let observed = Arc::new(Mutex::new(None));
        let observed_in_job = Arc::clone(&observed);
        let job_token = token.clone();
        scheduler
            .submit(&token, move || {
                started_tx.send(()).unwrap();
                // Wait for the drain to cancel us, then record what we saw.
                while !job_token.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                *observed_in_job.lock().unwrap() = Some(true);
            })
            .unwrap();
        started.recv_timeout(Duration::from_secs(5)).unwrap();
        scheduler.shutdown();
        assert_eq!(*observed.lock().unwrap(), Some(true), "job saw the cancellation");
        assert!(token.is_cancelled());
        assert!(scheduler.is_draining());
        let err = scheduler.submit(&CancelToken::new(), || {}).unwrap_err();
        assert!(matches!(err, FfsmError::ShuttingDown));
        assert_eq!(scheduler.stats().inflight, 0);
    }

    #[test]
    fn queued_jobs_run_during_drain_with_cancelled_tokens() {
        let scheduler = SessionScheduler::new(1, 4);
        let (release, gate) = channel();
        let gate = Arc::new(Mutex::new(gate));
        let blocker = CancelToken::new();
        scheduler.submit(&blocker, blocking_job(Arc::clone(&gate))).unwrap();
        // Queue a second job behind the blocked worker.
        let queued_token = CancelToken::new();
        let seen = Arc::new(Mutex::new(None));
        let seen_in_job = Arc::clone(&seen);
        let observe = queued_token.clone();
        scheduler
            .submit(&queued_token, move || {
                *seen_in_job.lock().unwrap() = Some(observe.is_cancelled());
            })
            .unwrap();
        // Release the blocker from another thread once the drain starts.
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let _ = release.send(());
        });
        scheduler.shutdown();
        releaser.join().unwrap();
        assert_eq!(
            *seen.lock().unwrap(),
            Some(true),
            "queued job still ran, and its token was already cancelled"
        );
    }

    #[test]
    fn panicking_jobs_do_not_shrink_the_pool() {
        let scheduler = SessionScheduler::new(1, 2);
        let token = CancelToken::new();
        scheduler.submit(&token, || panic!("session exploded")).unwrap();
        let (done_tx, done) = channel();
        // The same single worker must still be alive to run this.
        loop {
            let done_tx = done_tx.clone();
            match scheduler.submit(&token, move || done_tx.send(()).unwrap()) {
                Ok(()) => break,
                Err(FfsmError::Overloaded { .. }) => std::thread::sleep(Duration::from_millis(1)),
                Err(err) => panic!("unexpected: {err}"),
            }
        }
        done.recv_timeout(Duration::from_secs(5)).expect("worker survived the panic");
        scheduler.shutdown();
    }
}
