//! Linear-program construction API.

use crate::simplex::{solve_standard, SimplexOptions};
use crate::standard::StandardForm;
use crate::{LpError, Solution};

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimise the objective function.
    Minimize,
    /// Maximise the objective function.
    Maximize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `Σ aᵢ xᵢ ≤ b`
    Le,
    /// `Σ aᵢ xᵢ ≥ b`
    Ge,
    /// `Σ aᵢ xᵢ = b`
    Eq,
}

/// A single linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices must be unique.
    pub coeffs: Vec<(usize, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Variables are identified by `0..num_vars`.  All variables are constrained to be
/// non-negative; upper bounds can be added with [`Problem::set_upper_bound`] (they are
/// translated into ordinary `≤` rows).
#[derive(Debug, Clone)]
pub struct Problem {
    objective: Objective,
    costs: Vec<f64>,
    constraints: Vec<Constraint>,
    upper_bounds: Vec<Option<f64>>,
    options: SimplexOptions,
}

impl Problem {
    /// Create an empty problem with `num_vars` non-negative variables and an all-zero
    /// objective.
    pub fn new(objective: Objective, num_vars: usize) -> Self {
        Problem {
            objective,
            costs: vec![0.0; num_vars],
            constraints: Vec::new(),
            upper_bounds: vec![None; num_vars],
            options: SimplexOptions::default(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints added so far (excluding upper bounds).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimisation direction of this problem.
    pub fn objective_direction(&self) -> Objective {
        self.objective
    }

    /// Set the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        self.costs[var] = coeff;
    }

    /// Read the objective coefficient of variable `var`.
    pub fn objective_coeff(&self, var: usize) -> f64 {
        self.costs[var]
    }

    /// Constrain `var ≤ bound` (in addition to the implicit `var ≥ 0`).
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) {
        self.upper_bounds[var] = Some(bound);
    }

    /// Override the simplex options (iteration limit etc.).
    pub fn set_options(&mut self, options: SimplexOptions) {
        self.options = options;
    }

    /// Add a constraint `Σ coeffs · x  (op)  rhs` and return its index.
    ///
    /// Duplicate variable indices in `coeffs` are summed.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        self.constraints.push(Constraint { coeffs, op, rhs });
        self.constraints.len() - 1
    }

    /// Validate variable indices in every constraint.
    fn validate(&self) -> Result<(), LpError> {
        let n = self.num_vars();
        for c in &self.constraints {
            for &(v, _) in &c.coeffs {
                if v >= n {
                    return Err(LpError::InvalidVariable { var: v, num_vars: n });
                }
            }
        }
        Ok(())
    }

    /// Solve the problem with the two-phase primal simplex method.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.validate()?;
        let std_form = StandardForm::from_problem(self);
        let raw = solve_standard(&std_form, &self.options)?;
        // Map the standard-form solution back to the original variables and objective
        // orientation.
        let mut values = vec![0.0; self.num_vars()];
        values.copy_from_slice(&raw.values[..self.num_vars()]);
        let mut objective: f64 = self.costs.iter().zip(values.iter()).map(|(c, x)| c * x).sum();
        // Guard against -0.0 noise.
        if objective.abs() < crate::EPS {
            objective = 0.0;
        }
        Ok(Solution { objective, values, pivots: raw.pivots })
    }

    /// Expose the constraints (used by [`StandardForm`]).
    pub(crate) fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Expose the objective coefficients (used by [`StandardForm`]).
    pub(crate) fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Expose the upper bounds (used by [`StandardForm`]).
    pub(crate) fn upper_bounds(&self) -> &[Option<f64>] {
        &self.upper_bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_minimization() {
        // min 2x + 3y  s.t. x + y >= 4, x >= 1 -> optimum at (4 - 1? ) actually x=4,y=0 => 8
        let mut p = Problem::new(Objective::Minimize, 2);
        p.set_objective(0, 2.0);
        p.set_objective(1, 3.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 8.0).abs() < 1e-7, "got {}", sol.objective);
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic) -> 36 at (2,6)
        let mut p = Problem::new(Objective::Maximize, 2);
        p.set_objective(0, 3.0);
        p.set_objective(1, 5.0);
        p.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-7, "got {}", sol.objective);
        assert!((sol.value(0) - 2.0).abs() < 1e-7);
        assert!((sol.value(1) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 3, x <= 2 -> 3
        let mut p = Problem::new(Objective::Maximize, 2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 3.0);
        p.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 2.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Objective::Minimize, 1);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Objective::Maximize, 1);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        // max x + y, x <= 0.5, y <= 0.25 via upper bounds
        let mut p = Problem::new(Objective::Maximize, 2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        p.set_upper_bound(0, 0.5);
        p.set_upper_bound(1, 0.25);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 0.75).abs() < 1e-7);
    }

    #[test]
    fn invalid_variable_rejected() {
        let mut p = Problem::new(Objective::Minimize, 1);
        p.add_constraint(vec![(3, 1.0)], ConstraintOp::Ge, 1.0);
        assert!(matches!(p.solve(), Err(LpError::InvalidVariable { var: 3, .. })));
    }

    #[test]
    fn negative_rhs_handled() {
        // min x s.t. -x <= -2  (i.e. x >= 2)
        let mut p = Problem::new(Objective::Minimize, 1);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, -1.0)], ConstraintOp::Le, -2.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn duplicate_coefficients_summed() {
        // min x s.t. x/2 + x/2 >= 3
        let mut p = Problem::new(Objective::Minimize, 1);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 0.5), (0, 0.5)], ConstraintOp::Ge, 3.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::new(Objective::Minimize, 0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.objective, 0.0);
        assert!(sol.values.is_empty());
    }
}
