//! Minimal transversal (hitting set) enumeration.
//!
//! A *transversal* of a hypergraph is exactly a vertex cover (Definition 3.3.1); a
//! transversal is *minimal* when no proper subset is still a transversal.  The set of
//! all minimal transversals — the *transversal hypergraph* `Tr(H)` — is a classical
//! object in hypergraph theory (Berge) and gives a complete picture of the MVC
//! landscape of an occurrence hypergraph: σMVC is the size of the smallest member of
//! `Tr(H)`, and the spread of member sizes shows how "robust" that minimum is.
//!
//! Full enumeration is exponential in the worst case, so [`minimal_transversals`]
//! takes an explicit output cap and reports whether it was reached.  The incremental
//! Berge-style algorithm processes one edge at a time and keeps the running family
//! minimal.

use crate::Hypergraph;

/// Result of a (possibly truncated) minimal-transversal enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransversalEnumeration {
    /// The minimal transversals found, each sorted; globally sorted by (size, lexicographic).
    pub transversals: Vec<Vec<usize>>,
    /// `true` if the enumeration is complete, `false` if the cap was hit.
    pub complete: bool,
}

impl TransversalEnumeration {
    /// Size of the smallest minimal transversal (= σMVC when the enumeration is
    /// complete), or `None` if no transversal was produced.
    pub fn minimum_size(&self) -> Option<usize> {
        self.transversals.iter().map(Vec::len).min()
    }

    /// Size of the largest *minimal* transversal (the upper end of the MVC landscape).
    pub fn maximum_size(&self) -> Option<usize> {
        self.transversals.iter().map(Vec::len).max()
    }
}

/// `true` if sorted `a` is a subset of sorted `b`.
fn is_subset(a: &[usize], b: &[usize]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = 0;
    for &x in a {
        while bi < b.len() && b[bi] < x {
            bi += 1;
        }
        if bi >= b.len() || b[bi] != x {
            return false;
        }
        bi += 1;
    }
    true
}

/// Enumerate the minimal transversals of `h`, producing at most `cap` of them.
///
/// Berge's incremental algorithm: start with the empty family `{∅}`; for every edge
/// `e`, replace each partial transversal `t` by `{t ∪ {v} : v ∈ e}` (skipping the
/// extension when `t` already hits `e`), then prune non-minimal members.  With a cap
/// the intermediate family is truncated by size-first order, which keeps the smallest
/// transversals and marks the result incomplete.
pub fn minimal_transversals(h: &Hypergraph, cap: usize) -> TransversalEnumeration {
    if h.num_edges() == 0 {
        return TransversalEnumeration { transversals: vec![Vec::new()], complete: true };
    }
    let cap = cap.max(1);
    let mut family: Vec<Vec<usize>> = vec![Vec::new()];
    let mut complete = true;
    for (_, edge) in h.edges() {
        let mut next: Vec<Vec<usize>> = Vec::new();
        for t in &family {
            if edge.iter().any(|v| t.binary_search(v).is_ok()) {
                next.push(t.clone());
            } else {
                for &v in edge {
                    let mut extended = t.clone();
                    let pos = extended.partition_point(|&x| x < v);
                    extended.insert(pos, v);
                    next.push(extended);
                }
            }
        }
        // Prune duplicates and non-minimal members.
        next.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        next.dedup();
        let mut minimal: Vec<Vec<usize>> = Vec::with_capacity(next.len());
        for t in next {
            if !minimal.iter().any(|m| is_subset(m, &t)) {
                minimal.push(t);
            }
        }
        if minimal.len() > cap {
            minimal.truncate(cap);
            complete = false;
        }
        family = minimal;
    }
    family.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    TransversalEnumeration { transversals: family, complete }
}

/// `true` if `set` is a transversal (vertex cover) of `h` and removing any single
/// element breaks that property.
pub fn is_minimal_transversal(h: &Hypergraph, set: &[usize]) -> bool {
    if !crate::vertex_cover::is_vertex_cover(h, set) {
        return false;
    }
    for (i, _) in set.iter().enumerate() {
        let mut smaller: Vec<usize> = set.to_vec();
        smaller.remove(i);
        if crate::vertex_cover::is_vertex_cover(h, &smaller) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cover::exact_vertex_cover;
    use crate::SearchBudget;

    fn figure6_hypergraph() -> Hypergraph {
        // Hub 0 connected to 4..7, hub 7 connected to 1..3 (paper's Figure 6, renumbered).
        let mut h = Hypergraph::new(8);
        for e in [[0, 4], [0, 5], [0, 6], [0, 7], [1, 7], [2, 7], [3, 7]] {
            h.add_edge(e.to_vec()).unwrap();
        }
        h
    }

    #[test]
    fn empty_hypergraph_has_the_empty_transversal() {
        let t = minimal_transversals(&Hypergraph::new(4), 10);
        assert!(t.complete);
        assert_eq!(t.transversals, vec![Vec::<usize>::new()]);
        assert_eq!(t.minimum_size(), Some(0));
    }

    #[test]
    fn single_edge_transversals_are_its_vertices() {
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0, 1, 2]).unwrap();
        let t = minimal_transversals(&h, 10);
        assert!(t.complete);
        assert_eq!(t.transversals, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn two_disjoint_edges_give_cartesian_product() {
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![2, 3]).unwrap();
        let t = minimal_transversals(&h, 10);
        assert!(t.complete);
        assert_eq!(t.transversals.len(), 4);
        assert!(t.transversals.contains(&vec![0, 2]));
        assert!(t.transversals.contains(&vec![1, 3]));
        assert_eq!(t.minimum_size(), Some(2));
        assert_eq!(t.maximum_size(), Some(2));
    }

    #[test]
    fn minimum_transversal_matches_exact_vertex_cover() {
        let h = figure6_hypergraph();
        let t = minimal_transversals(&h, 200);
        assert!(t.complete);
        let mvc = exact_vertex_cover(&h, SearchBudget::default()).value;
        assert_eq!(t.minimum_size(), Some(mvc));
        assert_eq!(mvc, 2);
        // Every enumerated member really is a minimal transversal.
        for m in &t.transversals {
            assert!(is_minimal_transversal(&h, m));
        }
        // {0, 7} is the unique minimum.
        assert!(t.transversals.contains(&vec![0, 7]));
    }

    #[test]
    fn cap_truncates_and_reports_incomplete() {
        // A hypergraph with exponentially many minimal transversals: n disjoint pairs.
        let mut h = Hypergraph::new(20);
        for i in 0..10 {
            h.add_edge(vec![2 * i, 2 * i + 1]).unwrap();
        }
        let t = minimal_transversals(&h, 16);
        assert!(!t.complete);
        assert!(t.transversals.len() <= 16);
        // Truncation keeps valid covers (they are still transversals of the edges seen).
        assert_eq!(t.minimum_size(), Some(10));
    }

    #[test]
    fn minimality_checker() {
        let h = figure6_hypergraph();
        assert!(is_minimal_transversal(&h, &[0, 7]));
        assert!(!is_minimal_transversal(&h, &[0, 7, 3])); // not minimal
        assert!(!is_minimal_transversal(&h, &[0, 3])); // not a cover
    }

    #[test]
    fn repeated_edges_do_not_change_the_family() {
        let mut h1 = Hypergraph::new(3);
        h1.add_edge(vec![0, 1]).unwrap();
        let mut h2 = Hypergraph::new(3);
        h2.add_edge(vec![0, 1]).unwrap();
        h2.add_edge(vec![0, 1]).unwrap();
        assert_eq!(minimal_transversals(&h1, 10), minimal_transversals(&h2, 10));
    }
}
