//! The support measures of the paper, unified behind one calculator.
//!
//! [`SupportMeasures`] is built from an [`OccurrenceSet`] and a [`MeasureConfig`]; it
//! exposes one method per measure plus a generic [`SupportMeasures::compute`] keyed by
//! [`MeasureKind`] (used by the miner and the experiment harness).  The occurrence and
//! instance hypergraphs are built lazily and cached.

pub mod mcp;
pub mod mi;
pub mod mis;
pub mod mni;
pub mod mvc;
pub mod relaxed;

use crate::occurrences::{HypergraphBasis, OccurrenceSet};
use crate::overlap::{OverlapAnalysis, OverlapCache, OverlapConfig};
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_hypergraph::independent_set::SimpleGraph;
use ffsm_hypergraph::{Hypergraph, SearchBudget};
use std::cell::OnceCell;
use std::sync::Arc;

/// Strategy for choosing the coarse-grained (transitive) node subsets over which the
/// MI measure minimises (Definition 3.2.4 leaves this collection open; see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MiStrategy {
    /// Only singleton subsets — MI degenerates to MNI.
    Singletons,
    /// Connected node subsets of exactly `k` vertices — the parameterised MNI-k of
    /// Definition 2.2.9.
    ConnectedK(usize),
    /// Singletons plus every subset of every automorphism orbit of every connected
    /// subgraph of the pattern (the reading illustrated by Figures 4 and 7).
    /// This is the default.
    #[default]
    AutomorphismOrbits,
    /// Singletons plus every subset of every label class — the loosest literal
    /// reading of "transitive node subset in a subgraph of P" (the edgeless subgraph
    /// makes all same-labelled vertices transitive).  Produces the smallest MI values.
    LabelClasses,
}

/// Algorithm used for the NP-hard MVC measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MvcAlgorithm {
    /// Branch-and-bound exact cover (budgeted).
    #[default]
    Exact,
    /// Maximal-matching based k-approximation (k = pattern size).
    GreedyMatching,
    /// Highest-degree greedy heuristic.
    GreedyDegree,
}

/// Identifies a support measure for generic computation.
///
/// `MeasureKind` is the *factory* for the built-in measures: [`MeasureKind::measure`]
/// packages a kind plus a [`MeasureConfig`] into an `Arc<dyn SupportMeasure>` that the
/// miner, CLI and bench harness dispatch through.  Parsing (`FromStr`) and display
/// use the paper's measure names (`MNI`, `MI`, `MVC`, `MIS`, `MIES`, `nuMVC`,
/// `nuMIES`, `MCP`, `MNI-k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// Number of occurrences (not anti-monotonic; for reference only).
    OccurrenceCount,
    /// Number of instances (not anti-monotonic; for reference only).
    InstanceCount,
    /// Minimum-image-based support (Definition 2.2.8).
    Mni,
    /// Minimum k-image-based support (Definition 2.2.9).
    MniK(usize),
    /// Minimum instance support (Definition 3.2.4) under the configured strategy.
    Mi,
    /// Minimum vertex cover support (Definition 3.3.2) under the configured algorithm.
    Mvc,
    /// Overlap-graph maximum-independent-set support (Definition 2.2.7).
    Mis,
    /// Maximum independent edge set support (Definition 4.2.1).
    Mies,
    /// LP relaxation of MVC (Definition 4.3.1).
    RelaxedMvc,
    /// LP relaxation of MIES (Definition 4.3.2).
    RelaxedMies,
    /// Minimum clique partition of the overlap graph (Calders et al.; Section 5).
    Mcp,
}

impl MeasureKind {
    /// All anti-monotonic measures in the order of the bounding chain (smallest
    /// expected value first).
    pub fn bounding_chain() -> Vec<MeasureKind> {
        vec![
            MeasureKind::Mis,
            MeasureKind::Mies,
            MeasureKind::RelaxedMies,
            MeasureKind::RelaxedMvc,
            MeasureKind::Mvc,
            MeasureKind::Mi,
            MeasureKind::Mni,
        ]
    }

    /// Short name used in experiment tables (same text as the `Display` impl).
    pub fn name(&self) -> String {
        self.to_string()
    }

    /// `true` when the measure is anti-monotone (Definition 2.2.2), i.e. sound for
    /// threshold pruning.  Only the raw occurrence and instance counts are not.
    pub fn is_anti_monotone(&self) -> bool {
        !matches!(self, MeasureKind::OccurrenceCount | MeasureKind::InstanceCount)
    }

    /// Build the measure as a pluggable [`SupportMeasure`] under `config`.
    ///
    /// This is the factory the mining session, CLI and bench harness go through; a
    /// user-defined measure implements [`SupportMeasure`] directly instead.
    pub fn measure(self, config: MeasureConfig) -> std::sync::Arc<dyn SupportMeasure> {
        std::sync::Arc::new(BuiltinMeasure { kind: self, name: self.name(), config })
    }
}

impl std::fmt::Display for MeasureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Route through `pad` so width/alignment specs like `{:<4}` are honoured.
        match self {
            MeasureKind::OccurrenceCount => f.pad("occurrences"),
            MeasureKind::InstanceCount => f.pad("instances"),
            MeasureKind::Mni => f.pad("MNI"),
            MeasureKind::MniK(k) => f.pad(&format!("MNI-{k}")),
            MeasureKind::Mi => f.pad("MI"),
            MeasureKind::Mvc => f.pad("MVC"),
            MeasureKind::Mis => f.pad("MIS"),
            MeasureKind::Mies => f.pad("MIES"),
            MeasureKind::RelaxedMvc => f.pad("nuMVC"),
            MeasureKind::RelaxedMies => f.pad("nuMIES"),
            MeasureKind::Mcp => f.pad("MCP"),
        }
    }
}

impl std::str::FromStr for MeasureKind {
    type Err = crate::FfsmError;

    /// Parse a measure name, case-insensitively.  Accepts the paper's names (`MNI`,
    /// `MI`, `MVC`, `MIS`, `MIES`, `nuMVC`, `nuMIES`, `MCP`), the parameterised
    /// `MNI-k` form, and `occurrences` / `instances` for the raw counts.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.trim().to_ascii_uppercase();
        if let Some(k) = upper.strip_prefix("MNI-") {
            let k: usize =
                k.parse().map_err(|_| crate::FfsmError::UnknownMeasure(s.trim().to_string()))?;
            if k == 0 {
                return Err(crate::FfsmError::InvalidConfig("MNI-k needs k >= 1".into()));
            }
            return Ok(MeasureKind::MniK(k));
        }
        match upper.as_str() {
            "OCCURRENCES" => Ok(MeasureKind::OccurrenceCount),
            "INSTANCES" => Ok(MeasureKind::InstanceCount),
            "MNI" => Ok(MeasureKind::Mni),
            "MI" => Ok(MeasureKind::Mi),
            "MVC" => Ok(MeasureKind::Mvc),
            "MIS" => Ok(MeasureKind::Mis),
            "MIES" => Ok(MeasureKind::Mies),
            "NUMVC" => Ok(MeasureKind::RelaxedMvc),
            "NUMIES" => Ok(MeasureKind::RelaxedMies),
            "MCP" => Ok(MeasureKind::Mcp),
            _ => Err(crate::FfsmError::UnknownMeasure(s.trim().to_string())),
        }
    }
}

/// A pluggable support measure: the paper's central abstraction, as a trait.
///
/// The miner never inspects *how* support is computed — it only needs a value per
/// occurrence set plus the promise that the measure is anti-monotone so threshold
/// pruning is sound.  The built-in measures come from [`MeasureKind::measure`];
/// user-defined measures implement this trait and plug in through
/// `MiningSession::measure` unchanged.
///
/// The trait is object-safe and implementations must be `Send + Sync`, because the
/// level-parallel miner evaluates candidates through one `Arc<dyn SupportMeasure>`
/// shared across worker threads.
pub trait SupportMeasure: Send + Sync {
    /// The support of the pattern whose occurrences are `occurrences`.
    fn support(&self, occurrences: &OccurrenceSet) -> f64;

    /// Whether the measure is anti-monotone (Definition 2.2.2).  The miner refuses to
    /// threshold-prune with a measure that answers `false`.
    fn is_anti_monotone(&self) -> bool;

    /// Short human-readable name, used in tables and error messages.
    fn name(&self) -> &str;
}

/// A built-in measure: a [`MeasureKind`] bound to a [`MeasureConfig`].
#[derive(Debug, Clone)]
struct BuiltinMeasure {
    kind: MeasureKind,
    name: String,
    config: MeasureConfig,
}

impl SupportMeasure for BuiltinMeasure {
    fn support(&self, occurrences: &OccurrenceSet) -> f64 {
        compute_kind(occurrences, &self.config, self.kind)
    }

    fn is_anti_monotone(&self) -> bool {
        self.kind.is_anti_monotone()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Build the overlap graph of `hypergraph` under the configured strategy — the one
/// place [`OverlapConfig`] is interpreted for the measure and mining paths.
fn overlap_graph_for(hypergraph: &Hypergraph, overlap: &OverlapConfig) -> SimpleGraph {
    match overlap.build {
        crate::overlap::OverlapBuild::Indexed => hypergraph.overlap_graph_parallel(overlap.threads),
        crate::overlap::OverlapBuild::Naive => {
            SimpleGraph::from_adjacency(hypergraph.overlap_adjacency())
        }
    }
}

/// Compute one measure of `occ` directly, without the cached-hypergraph calculator
/// (each call builds the hypergraph it needs, which is the right trade-off when only
/// one measure is evaluated per occurrence set — the miner's access pattern).
fn compute_kind(occ: &OccurrenceSet, config: &MeasureConfig, kind: MeasureKind) -> f64 {
    let overlap_measure = |solve: fn(&SimpleGraph, SearchBudget) -> MeasureOutcome| {
        let hypergraph = occ.hypergraph(config.basis);
        if hypergraph.is_empty() {
            return 0.0;
        }
        solve(&overlap_graph_for(&hypergraph, &config.overlap), config.search_budget).value as f64
    };
    match kind {
        MeasureKind::OccurrenceCount => occ.num_occurrences() as f64,
        MeasureKind::InstanceCount => occ.num_instances() as f64,
        MeasureKind::Mni => mni::mni(occ) as f64,
        MeasureKind::MniK(k) => mni::mni_k(occ, k) as f64,
        MeasureKind::Mi => mi::mi(occ, config.mi_strategy) as f64,
        MeasureKind::Mvc => {
            mvc::mvc(&occ.hypergraph(config.basis), config.mvc_algorithm, config.search_budget)
                .value as f64
        }
        MeasureKind::Mis => overlap_measure(mis::mis_on_graph),
        MeasureKind::Mies => {
            mis::mies(&occ.hypergraph(config.basis), config.search_budget).value as f64
        }
        MeasureKind::RelaxedMvc => relaxed::relaxed_mvc(&occ.hypergraph(config.basis)),
        MeasureKind::RelaxedMies => relaxed::relaxed_mies(&occ.hypergraph(config.basis)),
        MeasureKind::Mcp => overlap_measure(mcp::mcp_on_graph),
    }
}

/// Outcome of an NP-hard measure: the value plus whether it is proven optimal (the
/// branch-and-bound searches are budgeted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureOutcome {
    /// The measure value.
    pub value: usize,
    /// `false` if the search budget was exhausted and `value` is only the best bound
    /// found (an upper bound for minimisation problems, lower bound for maximisation).
    pub optimal: bool,
}

/// Configuration shared by all measures.
#[derive(Debug, Clone, Default)]
pub struct MeasureConfig {
    /// Occurrence-enumeration settings (embedding budget, induced flag).
    pub iso_config: IsoConfig,
    /// Strategy for the MI measure.
    pub mi_strategy: MiStrategy,
    /// Algorithm for the MVC measure.
    pub mvc_algorithm: MvcAlgorithm,
    /// Hypergraph basis (occurrence vs instance) for MVC / MIS / MIES / relaxations.
    pub basis: HypergraphBasis,
    /// Node budget for exact branch-and-bound searches.
    pub search_budget: SearchBudget,
    /// Overlap-graph construction options (builder selection, worker threads) for
    /// the overlap-graph measures (MIS, MCP) and [`SupportMeasures::overlap_analysis`].
    pub overlap: OverlapConfig,
}

/// Calculator for every support measure over one pattern/data-graph pair.
///
/// All derived structure is built lazily and shared: the occurrence / instance
/// hypergraphs (consumed by MVC, MIES and the LP relaxations) and, through an
/// [`OverlapCache`] keyed by basis, the hypergraph's overlap graph (consumed by MIS
/// and MCP).  Evaluating MIS then MVC then MCP on the same pattern therefore
/// performs exactly one overlap-graph build — [`SupportMeasures::overlap_builds`]
/// is the counter the cache tests assert on.  The cache lives and dies with this
/// calculator, so a new pattern (a new `SupportMeasures`) starts cold.
#[derive(Debug)]
pub struct SupportMeasures {
    occurrences: OccurrenceSet,
    config: MeasureConfig,
    occurrence_hg: OnceCell<Hypergraph>,
    instance_hg: OnceCell<Hypergraph>,
    overlap_cache: OverlapCache,
}

impl SupportMeasures {
    /// Build a calculator from an occurrence set.
    pub fn new(occurrences: OccurrenceSet, config: MeasureConfig) -> Self {
        SupportMeasures {
            occurrences,
            config,
            occurrence_hg: OnceCell::new(),
            instance_hg: OnceCell::new(),
            overlap_cache: OverlapCache::with_slots(2),
        }
    }

    /// The underlying occurrence set.
    pub fn occurrences(&self) -> &OccurrenceSet {
        &self.occurrences
    }

    /// The active configuration.
    pub fn config(&self) -> &MeasureConfig {
        &self.config
    }

    /// The (cached) hypergraph for `basis`.
    pub fn hypergraph(&self, basis: HypergraphBasis) -> &Hypergraph {
        match basis {
            HypergraphBasis::Occurrence => {
                self.occurrence_hg.get_or_init(|| self.occurrences.occurrence_hypergraph())
            }
            HypergraphBasis::Instance => {
                self.instance_hg.get_or_init(|| self.occurrences.instance_hypergraph())
            }
        }
    }

    /// The (cached) overlap graph of the hypergraph for `basis` — the object MIS and
    /// MCP are solved on.  Built at most once per basis with the configured
    /// [`OverlapConfig`] strategy (indexed by default, optionally thread-parallel,
    /// or the naive oracle).
    pub fn overlap_graph(&self, basis: HypergraphBasis) -> Arc<SimpleGraph> {
        let slot = match basis {
            HypergraphBasis::Occurrence => 0,
            HypergraphBasis::Instance => 1,
        };
        self.overlap_cache
            .get_or_build(slot, || overlap_graph_for(self.hypergraph(basis), &self.config.overlap))
    }

    /// How many overlap graphs this calculator has actually built (at most one per
    /// basis; MIS, MCP and repeated queries share them).
    pub fn overlap_builds(&self) -> usize {
        self.overlap_cache.builds()
    }

    /// An [`OverlapAnalysis`] over the underlying occurrences, configured with this
    /// calculator's [`OverlapConfig`] — the entry point for the per-notion overlap
    /// variants of Section 4.5 (simple / harmful / structural / edge).
    ///
    /// Each call constructs a *fresh* analysis (its own transitive-pair matrix and
    /// per-notion cache): hold the returned value and query it repeatedly rather
    /// than calling this accessor per query.
    pub fn overlap_analysis(&self) -> OverlapAnalysis<'_> {
        OverlapAnalysis::with_config(&self.occurrences, self.config.overlap)
    }

    /// Number of occurrences (reference value, not anti-monotonic).
    pub fn occurrence_count(&self) -> usize {
        self.occurrences.num_occurrences()
    }

    /// Number of instances (reference value, not anti-monotonic).
    pub fn instance_count(&self) -> usize {
        self.occurrences.num_instances()
    }

    /// Minimum-image-based support σMNI (Definition 2.2.8).
    pub fn mni(&self) -> usize {
        mni::mni(&self.occurrences)
    }

    /// Minimum k-image-based support σMNI(·, k) (Definition 2.2.9).
    pub fn mni_k(&self, k: usize) -> usize {
        mni::mni_k(&self.occurrences, k)
    }

    /// Minimum instance support σMI (Definition 3.2.4) under the configured strategy.
    pub fn mi(&self) -> usize {
        self.mi_with(self.config.mi_strategy)
    }

    /// Minimum instance support under an explicit strategy.
    pub fn mi_with(&self, strategy: MiStrategy) -> usize {
        mi::mi(&self.occurrences, strategy)
    }

    /// Minimum vertex cover support σMVC (Definition 3.3.2) under the configured
    /// algorithm and basis.
    pub fn mvc(&self) -> MeasureOutcome {
        self.mvc_with(self.config.mvc_algorithm)
    }

    /// Minimum vertex cover support under an explicit algorithm.
    pub fn mvc_with(&self, algorithm: MvcAlgorithm) -> MeasureOutcome {
        mvc::mvc(self.hypergraph(self.config.basis), algorithm, self.config.search_budget)
    }

    /// Overlap-graph MIS support σMIS (Definition 2.2.7) under the configured basis.
    /// Solved on the cached overlap graph, shared with [`SupportMeasures::mcp`].
    pub fn mis(&self) -> MeasureOutcome {
        mis::mis_on_graph(&self.overlap_graph(self.config.basis), self.config.search_budget)
    }

    /// Minimum clique partition support σMCP (Calders et al.) under the configured
    /// basis.  Always `≥ σMIS` (every clique contributes at most one independent
    /// occurrence).  Solved on the same cached overlap graph as
    /// [`SupportMeasures::mis`].
    pub fn mcp(&self) -> MeasureOutcome {
        mcp::mcp_on_graph(&self.overlap_graph(self.config.basis), self.config.search_budget)
    }

    /// Maximum independent edge set support σMIES (Definition 4.2.1).
    pub fn mies(&self) -> MeasureOutcome {
        mis::mies(self.hypergraph(self.config.basis), self.config.search_budget)
    }

    /// LP-relaxed vertex cover νMVC (Definition 4.3.1).
    pub fn relaxed_mvc(&self) -> f64 {
        relaxed::relaxed_mvc(self.hypergraph(self.config.basis))
    }

    /// LP-relaxed independent edge set νMIES (Definition 4.3.2).
    pub fn relaxed_mies(&self) -> f64 {
        relaxed::relaxed_mies(self.hypergraph(self.config.basis))
    }

    /// Generic computation keyed by [`MeasureKind`]; integral measures are returned as
    /// `f64` for uniformity.
    pub fn compute(&self, kind: MeasureKind) -> f64 {
        match kind {
            MeasureKind::OccurrenceCount => self.occurrence_count() as f64,
            MeasureKind::InstanceCount => self.instance_count() as f64,
            MeasureKind::Mni => self.mni() as f64,
            MeasureKind::MniK(k) => self.mni_k(k) as f64,
            MeasureKind::Mi => self.mi() as f64,
            MeasureKind::Mvc => self.mvc().value as f64,
            MeasureKind::Mis => self.mis().value as f64,
            MeasureKind::Mies => self.mies().value as f64,
            MeasureKind::RelaxedMvc => self.relaxed_mvc(),
            MeasureKind::RelaxedMies => self.relaxed_mies(),
            MeasureKind::Mcp => self.mcp().value as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::figures;

    fn calculator(example: &ffsm_graph::figures::FigureExample) -> SupportMeasures {
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        SupportMeasures::new(occ, MeasureConfig::default())
    }

    #[test]
    fn figure2_values() {
        // MNI = 3, MIS = 1, one instance.
        let m = calculator(&figures::figure2());
        assert_eq!(m.occurrence_count(), 6);
        assert_eq!(m.instance_count(), 1);
        assert_eq!(m.mni(), 3);
        assert_eq!(m.mis().value, 1);
        assert_eq!(m.mies().value, 1);
        assert_eq!(m.mi(), 1);
        assert_eq!(m.mvc().value, 1);
    }

    #[test]
    fn figure4_values() {
        // MNI = 2, MI = 1.
        let m = calculator(&figures::figure4());
        assert_eq!(m.mni(), 2);
        assert_eq!(m.mi(), 1);
        assert_eq!(m.mis().value, 1);
    }

    #[test]
    fn figure6_values() {
        // MIS = 2, MVC = 2, MI = 4, MNI = 4.
        let m = calculator(&figures::figure6());
        assert_eq!(m.occurrence_count(), 7);
        assert_eq!(m.mis().value, 2);
        assert_eq!(m.mvc().value, 2);
        assert_eq!(m.mi(), 4);
        assert_eq!(m.mni(), 4);
    }

    #[test]
    fn figure8_values() {
        // MIS = MIES = 2.
        let m = calculator(&figures::figure8());
        assert_eq!(m.mis().value, 2);
        assert_eq!(m.mies().value, 2);
        assert!((m.relaxed_mies() - 2.0).abs() < 1e-6);
        assert!((m.relaxed_mvc() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn figure1_values() {
        // Reconstructed Figure 1: MIS = 2, MVC = 3, MI = 4, MNI = 5.
        let m = calculator(&figures::figure1());
        assert_eq!(m.mis().value, 2);
        assert_eq!(m.mvc().value, 3);
        assert_eq!(m.mi(), 4);
        assert_eq!(m.mni(), 5);
    }

    #[test]
    fn figure5_anti_monotonicity_of_mvc() {
        // Extending the Figure 2 triangle by one vertex keeps MVC at 1.
        let m2 = calculator(&figures::figure2());
        let m5 = calculator(&figures::figure5());
        assert_eq!(m2.mvc().value, 1);
        assert_eq!(m5.mvc().value, 1);
        assert!(m5.mni() <= m2.mni());
        assert!(m5.mi() <= m2.mi());
        assert!(m5.mis().value <= m2.mis().value);
    }

    #[test]
    fn generic_compute_matches_specific_methods() {
        let m = calculator(&figures::figure6());
        assert_eq!(m.compute(MeasureKind::Mni), m.mni() as f64);
        assert_eq!(m.compute(MeasureKind::Mi), m.mi() as f64);
        assert_eq!(m.compute(MeasureKind::Mvc), m.mvc().value as f64);
        assert_eq!(m.compute(MeasureKind::Mis), m.mis().value as f64);
        assert_eq!(m.compute(MeasureKind::Mies), m.mies().value as f64);
        assert_eq!(m.compute(MeasureKind::OccurrenceCount), 7.0);
        assert_eq!(m.compute(MeasureKind::InstanceCount), 7.0);
        assert_eq!(m.compute(MeasureKind::MniK(2)), m.mni_k(2) as f64);
        assert!(m.compute(MeasureKind::RelaxedMvc) <= m.compute(MeasureKind::Mvc) + 1e-9);
    }

    #[test]
    fn measure_kind_names() {
        assert_eq!(MeasureKind::Mni.name(), "MNI");
        assert_eq!(MeasureKind::MniK(3).name(), "MNI-3");
        assert_eq!(MeasureKind::RelaxedMvc.name(), "nuMVC");
        assert_eq!(MeasureKind::bounding_chain().len(), 7);
    }

    #[test]
    fn measure_kind_parses_its_own_display() {
        let kinds = [
            MeasureKind::OccurrenceCount,
            MeasureKind::InstanceCount,
            MeasureKind::Mni,
            MeasureKind::MniK(4),
            MeasureKind::Mi,
            MeasureKind::Mvc,
            MeasureKind::Mis,
            MeasureKind::Mies,
            MeasureKind::RelaxedMvc,
            MeasureKind::RelaxedMies,
            MeasureKind::Mcp,
        ];
        for kind in kinds {
            let parsed: MeasureKind = kind.to_string().parse().expect("round trip");
            assert_eq!(parsed, kind);
        }
        assert_eq!("mvc".parse::<MeasureKind>().unwrap(), MeasureKind::Mvc);
        assert_eq!(" nuMVC ".parse::<MeasureKind>().unwrap(), MeasureKind::RelaxedMvc);
        assert!(matches!("bogus".parse::<MeasureKind>(), Err(crate::FfsmError::UnknownMeasure(_))));
        assert!(matches!("MNI-0".parse::<MeasureKind>(), Err(crate::FfsmError::InvalidConfig(_))));
    }

    #[test]
    fn mis_then_mvc_then_mcp_build_one_overlap_graph() {
        let m = calculator(&figures::figure6());
        assert_eq!(m.overlap_builds(), 0);
        assert_eq!(m.mis().value, 2);
        assert_eq!(m.overlap_builds(), 1);
        // MVC, MIES and the relaxations run on the hypergraph, not the overlap
        // graph: no further builds.
        assert_eq!(m.mvc().value, 2);
        assert!(m.relaxed_mvc().is_finite());
        m.mies();
        assert_eq!(m.overlap_builds(), 1);
        // MCP shares the cached overlap graph with MIS.
        assert_eq!(m.mcp().value, 2);
        assert_eq!(m.overlap_builds(), 1);
        // The instance basis is a separate slot.
        m.overlap_graph(HypergraphBasis::Instance);
        assert_eq!(m.overlap_builds(), 2);
        // A new pattern gets a new calculator and with it an empty cache.
        let fresh = calculator(&figures::figure2());
        assert_eq!(fresh.overlap_builds(), 0);
    }

    #[test]
    fn overlap_config_is_honored_on_every_measure_path() {
        let example = figures::figure6();
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        let default_config = MeasureConfig::default();
        for build in [crate::OverlapBuild::Indexed, crate::OverlapBuild::Naive] {
            for threads in [1usize, 3] {
                let config = MeasureConfig {
                    overlap: crate::OverlapConfig { build, threads },
                    ..MeasureConfig::default()
                };
                // Calculator path.
                let m = SupportMeasures::new(occ.clone(), config.clone());
                assert_eq!(m.mis().value, 2, "{build:?} x{threads}");
                assert_eq!(m.mcp().value, 2, "{build:?} x{threads}");
                // Miner/factory path.
                for kind in [MeasureKind::Mis, MeasureKind::Mcp] {
                    assert_eq!(
                        kind.measure(config.clone()).support(&occ),
                        kind.measure(default_config.clone()).support(&occ),
                        "{kind} under {build:?} x{threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_analysis_accessor_uses_the_configured_builder() {
        let m = calculator(&figures::figure6());
        let analysis = m.overlap_analysis();
        assert_eq!(
            analysis.overlap_edge_count(crate::OverlapKind::Simple),
            analysis.overlap_graph_naive(crate::OverlapKind::Simple).num_edges()
        );
    }

    #[test]
    fn measure_kind_is_usable_as_map_key() {
        let mut table = std::collections::HashMap::new();
        table.insert(MeasureKind::Mni, 5.0);
        table.insert(MeasureKind::MniK(2), 4.0);
        assert_eq!(table[&MeasureKind::Mni], 5.0);
        assert_eq!(table[&MeasureKind::MniK(2)], 4.0);
    }

    #[test]
    fn factory_measure_matches_calculator() {
        let example = figures::figure6();
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        let calc = SupportMeasures::new(occ.clone(), MeasureConfig::default());
        for kind in [
            MeasureKind::Mni,
            MeasureKind::Mi,
            MeasureKind::Mvc,
            MeasureKind::Mis,
            MeasureKind::Mies,
            MeasureKind::RelaxedMvc,
            MeasureKind::Mcp,
        ] {
            let measure = kind.measure(MeasureConfig::default());
            assert_eq!(measure.support(&occ), calc.compute(kind), "kind {kind}");
            assert!(measure.is_anti_monotone());
            assert_eq!(measure.name(), kind.name());
        }
        assert!(!MeasureKind::OccurrenceCount.measure(MeasureConfig::default()).is_anti_monotone());
    }
}
