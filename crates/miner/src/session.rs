//! [`MiningSession`] — the single entry point for frequent-subgraph mining.
//!
//! A session is a builder over one prepared data graph: pick a measure (built-in
//! [`MeasureKind`] or any user [`SupportMeasure`] impl), set the threshold and
//! limits, then either [`MiningSession::run`] (batch) or [`MiningSession::stream`]
//! (lazy, pull-based events).  Sequential, level-parallel and top-k mining are
//! modes of one engine, not separate APIs:
//!
//! ```
//! use ffsm_graph::{generators, LabeledGraph};
//! use ffsm_core::MeasureKind;
//! use ffsm_miner::MiningSession;
//!
//! let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
//! let graph = generators::replicated(&triangle, 5, false);
//! let result = MiningSession::on(&graph)
//!     .measure(MeasureKind::Mni)
//!     .min_support(5.0)
//!     .max_edges(3)
//!     .run()
//!     .expect("valid session");
//! assert!(result.patterns.iter().any(|p| p.pattern.num_edges() == 3));
//! ```
//!
//! ## Prepare once, serve many
//!
//! [`MiningSession::on`] clones the graph into a private [`PreparedGraph`] —
//! convenient for one-shot calls, but every such session rebuilds the per-graph
//! artifacts.  Serving workloads prepare the graph once and open sessions over
//! the shared handle, from any number of threads; the matching index is then
//! built exactly once, ever:
//!
//! ```
//! use ffsm_graph::{generators, LabeledGraph};
//! use ffsm_miner::{MiningSession, PreparedGraph};
//!
//! let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
//! let prepared = PreparedGraph::new(generators::replicated(&triangle, 5, false));
//! let a = MiningSession::over(&prepared).min_support(5.0).max_edges(3).run().unwrap();
//! let b = MiningSession::over(&prepared).min_support(5.0).max_edges(3).run().unwrap();
//! assert_eq!(a.len(), b.len());
//! assert_eq!(prepared.index_build_count(), 1); // shared, never rebuilt
//! ```
//!
//! Sessions are owned and `Send` — no borrows of the graph — so a server thread
//! can build one and spawn it elsewhere.  [`MiningSession::cancel_token`] and
//! [`MiningSession::deadline`] bound a run's wall-clock cost; the run then stops
//! at a deterministic prefix with a typed
//! [`Completion`](crate::Completion) status.

use crate::delta::{CacheMode, DeltaContext, EvalCache};
use crate::engine::{EngineConfig, EngineState};
use crate::prepared::PreparedGraph;
use crate::stream::PatternStream;
use crate::types::MiningResult;
use ffsm_core::{
    CancelToken, EnumeratorBackend, FfsmError, GraphDelta, MeasureConfig, MeasureKind,
    SupportMeasure,
};
use ffsm_graph::LabeledGraph;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Safety caps bounding the cost of one mining run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiningBudget {
    /// Cap on the number of support evaluations (candidate patterns).
    pub max_evaluations: usize,
    /// Cap on the number of frequent patterns reported (threshold mode).
    pub max_patterns: usize,
}

impl Default for MiningBudget {
    fn default() -> Self {
        MiningBudget { max_evaluations: 100_000, max_patterns: 10_000 }
    }
}

/// The measure a session mines with: a built-in kind or a user-supplied impl.
#[derive(Clone)]
pub enum MeasureSelection {
    /// A built-in measure, instantiated with the session's [`MeasureConfig`] at
    /// [`MiningSession::run`] / [`MiningSession::stream`] time.
    Kind(MeasureKind),
    /// A user-defined pluggable measure.
    Custom(Arc<dyn SupportMeasure>),
}

impl std::fmt::Debug for MeasureSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureSelection::Kind(kind) => write!(f, "Kind({kind})"),
            MeasureSelection::Custom(m) => write!(f, "Custom({})", m.name()),
        }
    }
}

impl From<MeasureKind> for MeasureSelection {
    fn from(kind: MeasureKind) -> Self {
        MeasureSelection::Kind(kind)
    }
}

impl From<Arc<dyn SupportMeasure>> for MeasureSelection {
    fn from(measure: Arc<dyn SupportMeasure>) -> Self {
        MeasureSelection::Custom(measure)
    }
}

/// The canonical mining configuration a [`MiningSession`] builds up.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Support threshold τ: a pattern is frequent when `support ≥ min_support`.
    /// In top-k mode this is the floor below which patterns are never reported.
    pub min_support: f64,
    /// Which measure to mine with.
    pub measure: MeasureSelection,
    /// Measure configuration: occurrence-enumeration budget, MI strategy, MVC
    /// algorithm, hypergraph basis, search budget.  Built-in measures are
    /// instantiated with it; custom measures only use its `iso_config` (the engine
    /// enumerates occurrences with it).
    pub measure_config: MeasureConfig,
    /// Stop growing patterns beyond this many edges.
    pub max_edges: usize,
    /// Safety caps.
    pub budget: MiningBudget,
    /// Worker threads for candidate evaluation; `1` = sequential (the default),
    /// `0` = one per available core.
    pub threads: usize,
    /// `Some(k)` switches to top-k mining with a rising threshold.
    pub top_k: Option<usize>,
    /// Cooperative cancellation token; fire it (from any thread) to stop the run
    /// at a deterministic prefix.  Inert by default.
    pub cancel: CancelToken,
    /// Wall-clock deadline for the run, measured from `stream()` / `run()` time.
    pub deadline: Option<Duration>,
    /// Enable fine-grained span sampling (per-candidate candidate-space build
    /// and search times).  Counters and coarse per-level phase timings are
    /// always collected; this switch only adds the per-candidate clock reads.
    /// Guaranteed not to change results — the differential gate in
    /// `tests/obs_differential.rs` holds it to bit-for-bit identical output.
    pub metrics: bool,
    /// Bounds-first evaluation (see [`MiningSession::bounds_first`]): decide
    /// candidates from certified support intervals where a cheap argument
    /// suffices, and evaluate exactly only inside the uncertain band.
    pub bounds_first: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            min_support: 2.0,
            measure: MeasureSelection::Kind(MeasureKind::Mni),
            measure_config: MeasureConfig::default(),
            max_edges: 4,
            budget: MiningBudget::default(),
            threads: 1,
            top_k: None,
            cancel: CancelToken::default(),
            deadline: None,
            metrics: false,
            bounds_first: false,
        }
    }
}

/// Builder-style mining session over one prepared data graph.  See the module
/// docs for examples; construct with [`MiningSession::on`] (one-shot, clones the
/// graph) or [`MiningSession::over`] (shares a [`PreparedGraph`]).
///
/// The session is owned and `Send`: it holds an `Arc` handle to the prepared
/// graph, never a borrow.
pub struct MiningSession {
    prepared: PreparedGraph,
    config: SessionConfig,
}

impl MiningSession {
    /// Start a session over a shared [`PreparedGraph`] with default configuration
    /// (MNI, τ = 2, patterns up to 4 edges, sequential).  Cheap: clones the `Arc`
    /// handle, not the graph.
    pub fn over(prepared: &PreparedGraph) -> Self {
        MiningSession { prepared: prepared.clone(), config: SessionConfig::default() }
    }

    /// Start a one-shot session over `graph` (clones it into a private
    /// [`PreparedGraph`]).  For repeated sessions over the same graph, prepare it
    /// once and use [`MiningSession::over`] so the per-graph artifacts are shared.
    pub fn on(graph: &LabeledGraph) -> Self {
        Self::over(&PreparedGraph::new(graph.clone()))
    }

    /// Start a session over a shared [`PreparedGraph`] with a fully built
    /// [`SessionConfig`] — the re-run entry point for callers that keep one
    /// configuration across many epochs (`ffsm-dynamic`'s incremental miner).
    pub fn with_config(prepared: &PreparedGraph, config: SessionConfig) -> Self {
        MiningSession { prepared: prepared.clone(), config }
    }

    /// The prepared graph this session mines.
    pub fn prepared(&self) -> &PreparedGraph {
        &self.prepared
    }

    /// The canonical configuration built so far.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Select the measure: a built-in [`MeasureKind`] or an
    /// `Arc<dyn SupportMeasure>` of a user-defined measure.
    pub fn measure(mut self, measure: impl Into<MeasureSelection>) -> Self {
        self.config.measure = measure.into();
        self
    }

    /// Set the support threshold τ (the floor threshold in top-k mode).
    pub fn min_support(mut self, tau: f64) -> Self {
        self.config.min_support = tau;
        self
    }

    /// Stop growing patterns beyond `edges` edges.
    pub fn max_edges(mut self, edges: usize) -> Self {
        self.config.max_edges = edges;
        self
    }

    /// Use `count` worker threads for candidate evaluation (`1` = sequential,
    /// `0` = one per available core).  The thread count never changes the result.
    pub fn threads(mut self, count: usize) -> Self {
        self.config.threads = count;
        self
    }

    /// Select the occurrence-enumeration backend (shorthand for setting
    /// `measure_config.iso_config.backend`).
    ///
    /// Under the default [`EnumeratorBackend::CandidateSpace`] the engine uses the
    /// prepared graph's shared matching index ([`ffsm_core::GraphIndex`]) — built
    /// lazily exactly once per [`PreparedGraph`], never per session or per
    /// pattern.  [`EnumeratorBackend::Naive`] selects the recursive oracle (no
    /// index).  [`EnumeratorBackend::Auto`] resolves to one of the two per
    /// pattern from index statistics (label entropy, candidate reduction,
    /// pattern size); the choice affects only speed.  All backends yield
    /// identical patterns and support values.
    pub fn enumerator(mut self, backend: EnumeratorBackend) -> Self {
        self.config.measure_config.iso_config.backend = backend;
        self
    }

    /// Mine the `k` highest-support patterns instead of all patterns above τ.
    pub fn top_k(mut self, k: usize) -> Self {
        self.config.top_k = Some(k);
        self
    }

    /// Set the safety caps (evaluations, reported patterns).
    pub fn budget(mut self, budget: MiningBudget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Override the measure configuration (occurrence-enumeration budget, MI
    /// strategy, MVC algorithm, basis, search budget).
    pub fn measure_config(mut self, measure_config: MeasureConfig) -> Self {
        self.config.measure_config = measure_config;
        self
    }

    /// Attach a cancellation token.  Firing it (from any thread, any clone) stops
    /// the run cooperatively — between levels and inside occurrence enumeration —
    /// at a deterministic prefix with [`Completion::Cancelled`](crate::Completion).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.config.cancel = token;
        self
    }

    /// Bound the run's wall-clock time, measured from the moment
    /// [`MiningSession::stream`] / [`MiningSession::run`] is called.  A run past
    /// its deadline stops at a deterministic prefix with
    /// [`Completion::DeadlineExceeded`](crate::Completion).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Enable fine-grained metrics sampling: per-candidate candidate-space and
    /// search span times land in
    /// [`MiningStats::phase_timings`](crate::MiningStats).  Counters and coarse
    /// per-level phase timings are always on; this only adds the per-candidate
    /// clock reads.  Results are bit-for-bit identical either way.
    pub fn metrics(mut self, on: bool) -> Self {
        self.config.metrics = on;
        self
    }

    /// Enable bounds-first evaluation: each candidate first gets a certified
    /// support interval `[lo, hi]` from cheap arguments (the parent's bound,
    /// index cardinality, the paper's containment chain, a greedy packing, the
    /// covering LP with its dual), and the exact — potentially NP-hard —
    /// support computation runs only when the interval straddles the
    /// threshold.  The frequent-pattern *set* is identical to exact mining;
    /// accepted patterns additionally carry
    /// [`FrequentPattern::support_interval`](crate::FrequentPattern) and
    /// [`FrequentPattern::certificate`](crate::FrequentPattern), and a run
    /// interrupted by deadline or cancellation reports every still-pending
    /// candidate as [`MiningEvent::Undecided`](crate::MiningEvent) with a
    /// certified interval — the honest anytime answer.
    ///
    /// Bound-decided patterns report the deciding interval side as their
    /// `support` (the exact value was never computed).  The mode applies to
    /// built-in measure kinds with sound cheap bounds (the containment-chain
    /// measures; MVC under its exact algorithm); other kinds and custom
    /// measures silently take the plain exact path.  Incompatible with top-k
    /// (its rising threshold would invalidate earlier decisions) and with the
    /// caching runs (`run_recorded` / `run_delta` need exact supports) — those
    /// combinations are rejected at `run()` / `stream()` time.
    pub fn bounds_first(mut self, on: bool) -> Self {
        self.config.bounds_first = on;
        self
    }

    /// Validate the configuration and open the lazy event stream.  No support is
    /// evaluated until the stream is pulled.
    ///
    /// # Errors
    ///
    /// * [`FfsmError::InvalidConfig`] — non-finite or negative τ, `max_edges(0)`,
    ///   `top_k(0)`, or an `MNI-0` measure;
    /// * [`FfsmError::NotAntiMonotone`] — the selected measure refuses threshold
    ///   pruning (e.g. the raw occurrence count), which would make mining unsound.
    pub fn stream(self) -> Result<PatternStream, FfsmError> {
        self.stream_with(false, CacheMode::Off)
    }

    /// Shared validation + engine construction behind [`MiningSession::stream`]
    /// (`quiet = false`) and [`MiningSession::run`] (`quiet = true`: no consumer
    /// reads per-pattern events, so the engine skips materialising them).
    /// `mode` selects the cache interaction (off / record / delta reuse).
    fn stream_with(self, quiet: bool, mode: CacheMode) -> Result<PatternStream, FfsmError> {
        let MiningSession { prepared, config } = self;
        if !config.min_support.is_finite() || config.min_support < 0.0 {
            return Err(FfsmError::InvalidConfig(format!(
                "min_support must be finite and non-negative, got {}",
                config.min_support
            )));
        }
        if config.max_edges == 0 {
            return Err(FfsmError::InvalidConfig("max_edges must be at least 1".into()));
        }
        if config.top_k == Some(0) {
            return Err(FfsmError::InvalidConfig("top_k must be at least 1".into()));
        }
        if let MeasureSelection::Kind(MeasureKind::MniK(0)) = config.measure {
            return Err(FfsmError::InvalidConfig("MNI-k needs k >= 1".into()));
        }
        if config.bounds_first && config.top_k.is_some() {
            return Err(FfsmError::InvalidConfig(
                "bounds_first is incompatible with top_k: the rising threshold would \
                 invalidate interval decisions made at the floor"
                    .into(),
            ));
        }
        if config.bounds_first && !matches!(mode, CacheMode::Off) {
            return Err(FfsmError::InvalidConfig(
                "bounds_first is incompatible with run_recorded/run_delta: the evaluation \
                 cache needs exact supports, which bound-decided candidates never compute"
                    .into(),
            ));
        }
        // Combine the session token with the deadline into the token the
        // enumerators poll, so interruption reaches inside a running level.
        // `with_deadline` keeps the earlier bound, so a deadline the caller
        // already attached to the token survives; the engine checks the same
        // effective (tightest) deadline between levels.
        let run_token = match config.deadline.map(|d| Instant::now() + d) {
            Some(at) => config.cancel.with_deadline(at),
            None => config.cancel.clone(),
        };
        let deadline_at = run_token.deadline();
        let mut measure_config = config.measure_config.clone();
        measure_config.iso_config.cancel = run_token;
        // Bounds-first: built-in kinds with sound cheap bounds get an evaluator;
        // custom measures and unsupported kinds silently take the exact path.
        let bounds = match (&config.measure, config.bounds_first) {
            (MeasureSelection::Kind(kind), true) => {
                ffsm_approx::BoundsEvaluator::new(*kind, &measure_config, config.min_support)
                    .map(Arc::new)
            }
            _ => None,
        };
        let measure: Arc<dyn SupportMeasure> = match config.measure {
            MeasureSelection::Kind(kind) => kind.measure(measure_config.clone()),
            MeasureSelection::Custom(measure) => measure,
        };
        if !measure.is_anti_monotone() {
            return Err(FfsmError::NotAntiMonotone(measure.name().to_string()));
        }
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.threads
        };
        let engine_config = EngineConfig {
            min_support: config.min_support,
            iso_config: measure_config.iso_config,
            max_pattern_edges: config.max_edges,
            max_patterns: config.budget.max_patterns,
            max_evaluations: config.budget.max_evaluations,
            threads,
            top_k: config.top_k,
            cancel: config.cancel,
            deadline: deadline_at,
            metrics: config.metrics,
            bounds,
        };
        Ok(PatternStream::new(EngineState::new(prepared, measure, engine_config, quiet, mode)))
    }

    /// Validate the configuration and run the miner to completion — a thin
    /// adapter that collects [`MiningSession::stream`].  An interrupted run
    /// returns `Ok` with the deterministic prefix and a non-`Complete`
    /// [`Completion`](crate::Completion) in the result, never a silent truncation.
    ///
    /// # Errors
    ///
    /// Exactly those of [`MiningSession::stream`].
    pub fn run(self) -> Result<MiningResult, FfsmError> {
        Ok(self.stream_with(true, CacheMode::Off)?.into_result())
    }

    /// Run to completion like [`MiningSession::run`], additionally recording
    /// every candidate evaluation into an [`EvalCache`] — the cold leg of the
    /// dynamic-graph protocol.  After the graph absorbs an update batch
    /// ([`PreparedGraph::apply_updates`]), feed the cache and the batch's
    /// [`GraphDelta`] to [`MiningSession::run_delta`] over the new epoch.
    pub fn run_recorded(self) -> Result<(MiningResult, EvalCache), FfsmError> {
        Ok(self.stream_with(true, CacheMode::Record)?.into_result_and_cache())
    }

    /// Re-mine a new graph epoch incrementally: candidates whose occurrences
    /// provably avoid the delta's dirty region are answered from `prior` (the
    /// immediately preceding epoch's cache) without enumerating anything; all
    /// others are re-evaluated.  The result is **bit-for-bit identical** to a
    /// cold [`MiningSession::run`] over the same epoch (see the `delta` module
    /// docs for the argument), and the returned cache feeds the next epoch.
    ///
    /// The session must be configured like the run that produced `prior` (same
    /// measure, measure config and enumeration backend); the threshold, top-k
    /// and budget settings are free to change between epochs.
    /// [`MiningStats::evaluations_reused`](crate::MiningStats) reports how many
    /// evaluations the cache absorbed.
    ///
    /// # Errors
    ///
    /// Exactly those of [`MiningSession::stream`].
    pub fn run_delta(
        self,
        prior: EvalCache,
        delta: &GraphDelta,
    ) -> Result<(MiningResult, EvalCache), FfsmError> {
        // Guard against a delta from a different graph lineage: the session's
        // epoch must match the delta's post-batch vertex AND edge counts (a
        // pure-edge batch leaves the vertex count unchanged, so either check
        // alone would let a mismatched pairing through silently).
        let expected_vertices = delta.base_vertices + delta.vertices_added - delta.vertices_removed;
        let expected_edges = delta.base_edges + delta.edges_added - delta.edges_removed;
        let graph = self.prepared.graph();
        if graph.num_vertices() != expected_vertices || graph.num_edges() != expected_edges {
            return Err(FfsmError::InvalidConfig(format!(
                "run_delta: delta describes a batch ending at {expected_vertices} vertices / \
                 {expected_edges} edges, but the session's graph has {} vertices / {} edges — \
                 the cache and delta must come from the immediately preceding epoch of this graph",
                graph.num_vertices(),
                graph.num_edges()
            )));
        }
        let context = DeltaContext {
            prior,
            dirty_old: delta.dirty_old.clone(),
            dirty_new: delta.dirty_new.clone(),
        };
        Ok(self.stream_with(true, CacheMode::Delta(context))?.into_result_and_cache())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MiningEvent;
    use crate::types::Completion;
    use ffsm_core::OccurrenceSet;
    use ffsm_graph::generators;

    fn assert_send<T: Send>() {}

    #[test]
    fn sessions_are_owned_and_send() {
        assert_send::<MiningSession>();
        let graph = LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let session = MiningSession::on(&graph).min_support(1.0);
        // The session owns its graph handle: it outlives the borrow it was built
        // from and can run on another thread.
        drop(graph);
        let handle = std::thread::spawn(move || session.run().unwrap());
        let result = handle.join().unwrap();
        assert!(!result.is_empty());
        assert!(result.completion().is_complete());
    }

    fn triangle_forest(copies: usize) -> LabeledGraph {
        let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        generators::replicated(&triangle, copies, false)
    }

    #[test]
    fn builder_round_trips_every_setting() {
        let graph = LabeledGraph::new();
        let session = MiningSession::on(&graph)
            .measure(MeasureKind::Mis)
            .min_support(7.5)
            .max_edges(6)
            .threads(3)
            .top_k(9)
            .deadline(Duration::from_secs(4))
            .budget(MiningBudget { max_evaluations: 123, max_patterns: 45 });
        let config = session.config();
        assert!(matches!(config.measure, MeasureSelection::Kind(MeasureKind::Mis)));
        assert_eq!(config.min_support, 7.5);
        assert_eq!(config.max_edges, 6);
        assert_eq!(config.threads, 3);
        assert_eq!(config.top_k, Some(9));
        assert_eq!(config.deadline, Some(Duration::from_secs(4)));
        assert_eq!(config.budget, MiningBudget { max_evaluations: 123, max_patterns: 45 });
    }

    #[test]
    fn defaults_match_session_config_default() {
        let graph = LabeledGraph::new();
        let session = MiningSession::on(&graph);
        let d = SessionConfig::default();
        let config = session.config();
        assert_eq!(config.min_support, d.min_support);
        assert_eq!(config.max_edges, d.max_edges);
        assert_eq!(config.threads, d.threads);
        assert_eq!(config.top_k, d.top_k);
        assert_eq!(config.budget, d.budget);
        assert_eq!(config.deadline, None);
        assert!(config.cancel.is_inert());
        assert!(matches!(config.measure, MeasureSelection::Kind(MeasureKind::Mni)));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let graph = triangle_forest(2);
        let prepared = PreparedGraph::new(graph);
        let nan = MiningSession::over(&prepared).min_support(f64::NAN).run();
        assert!(matches!(nan, Err(FfsmError::InvalidConfig(_))));
        let negative = MiningSession::over(&prepared).min_support(-1.0).run();
        assert!(matches!(negative, Err(FfsmError::InvalidConfig(_))));
        let zero_edges = MiningSession::over(&prepared).max_edges(0).run();
        assert!(matches!(zero_edges, Err(FfsmError::InvalidConfig(_))));
        let zero_k = MiningSession::over(&prepared).top_k(0).run();
        assert!(matches!(zero_k, Err(FfsmError::InvalidConfig(_))));
        let mni0 = MiningSession::over(&prepared).measure(MeasureKind::MniK(0)).run();
        assert!(matches!(mni0, Err(FfsmError::InvalidConfig(_))));
        let unsound = MiningSession::over(&prepared).measure(MeasureKind::OccurrenceCount).run();
        assert!(matches!(unsound, Err(FfsmError::NotAntiMonotone(_))));
        // stream() rejects identically (run() is a thin adapter over it).
        assert!(matches!(
            MiningSession::over(&prepared).max_edges(0).stream().map(|_| ()),
            Err(FfsmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn threshold_run_finds_triangles() {
        let graph = triangle_forest(5);
        let result = MiningSession::on(&graph)
            .measure(MeasureKind::Mni)
            .min_support(5.0)
            .max_edges(3)
            .run()
            .unwrap();
        assert!(result.patterns.iter().any(|p| p.pattern.num_edges() == 3));
        assert_eq!(result.final_threshold, 5.0);
        assert!(result.completion().is_complete());
        for p in &result.patterns {
            assert!(p.support >= 5.0);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let graph = generators::community_graph(2, 10, 0.4, 0.05, 3, 9);
        let prepared = PreparedGraph::new(graph);
        let collect = |threads: usize| {
            MiningSession::over(&prepared)
                .min_support(3.0)
                .max_edges(2)
                .threads(threads)
                .run()
                .unwrap()
                .patterns
                .iter()
                .map(|p| ffsm_graph::canonical::canonical_code(&p.pattern))
                .collect::<std::collections::BTreeSet<_>>()
        };
        let base = collect(1);
        for threads in [2, 4, 0] {
            assert_eq!(base, collect(threads), "threads = {threads}");
        }
        assert_eq!(prepared.index_build_count(), 1, "index shared across all runs");
    }

    #[test]
    fn top_k_mode_returns_k_best_sorted() {
        let graph = triangle_forest(6);
        let result =
            MiningSession::on(&graph).min_support(1.0).max_edges(3).top_k(4).run().unwrap();
        assert!(result.patterns.len() <= 4);
        assert!(!result.patterns.is_empty());
        for w in result.patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
        assert!(result.final_threshold >= 1.0);
    }

    #[test]
    fn enumerator_backend_does_not_change_results() {
        let graph = generators::community_graph(2, 10, 0.4, 0.05, 3, 11);
        let collect = |backend: EnumeratorBackend| {
            MiningSession::on(&graph)
                .min_support(3.0)
                .max_edges(2)
                .enumerator(backend)
                .run()
                .unwrap()
                .patterns
                .iter()
                .map(|p| {
                    (
                        format!("{:?}", ffsm_graph::canonical::canonical_code(&p.pattern)),
                        p.support.to_bits(),
                        p.num_occurrences,
                    )
                })
                .collect::<std::collections::BTreeSet<_>>()
        };
        let candidate_space = collect(EnumeratorBackend::CandidateSpace);
        assert_eq!(candidate_space, collect(EnumeratorBackend::Naive));
        assert_eq!(candidate_space, collect(EnumeratorBackend::Auto));
    }

    #[test]
    fn stream_emits_patterns_then_finishes() {
        let graph = triangle_forest(4);
        let batch = MiningSession::on(&graph).min_support(4.0).max_edges(3).run().unwrap();
        let mut streamed = Vec::new();
        let mut finished = None;
        for event in MiningSession::on(&graph).min_support(4.0).max_edges(3).stream().unwrap() {
            match event.unwrap() {
                MiningEvent::Pattern(p) => streamed.push(p.pattern.num_edges()),
                MiningEvent::LevelCompleted(_) | MiningEvent::Undecided(_) => {}
                MiningEvent::Finished(summary) => finished = Some(summary),
            }
        }
        assert_eq!(streamed.len(), batch.len());
        let summary = finished.expect("stream ends with Finished");
        assert_eq!(summary.completion, Completion::Complete);
        assert_eq!(summary.num_patterns, batch.len());
    }

    #[test]
    fn pre_cancelled_session_yields_empty_prefix() {
        let token = CancelToken::new();
        token.cancel();
        let graph = triangle_forest(4);
        let result = MiningSession::on(&graph).min_support(1.0).cancel_token(token).run().unwrap();
        assert!(result.is_empty());
        assert_eq!(result.completion(), Completion::Cancelled);
    }

    #[test]
    fn deadline_carried_by_the_token_itself_is_honoured() {
        // A deadline attached to the token (not via .deadline()) must stop the run
        // and be attributed as DeadlineExceeded — never silently corrupt supports.
        let token = CancelToken::new().with_timeout(Duration::ZERO);
        let graph = triangle_forest(4);
        let result = MiningSession::on(&graph).min_support(1.0).cancel_token(token).run().unwrap();
        assert!(result.is_empty());
        assert_eq!(result.completion(), Completion::DeadlineExceeded);

        // And a looser session deadline must not override the token's tighter one.
        let token = CancelToken::new().with_timeout(Duration::ZERO);
        let result = MiningSession::on(&triangle_forest(4))
            .min_support(1.0)
            .cancel_token(token)
            .deadline(Duration::from_secs(3600))
            .run()
            .unwrap();
        assert!(result.is_empty());
        assert_eq!(result.completion(), Completion::DeadlineExceeded);
    }

    #[test]
    fn delta_rerun_matches_cold_run_and_reuses_evaluations() {
        use ffsm_graph::GraphUpdate;
        let prepared = PreparedGraph::new(generators::community_graph(3, 12, 0.35, 0.03, 4, 17));
        let configure = |p: &PreparedGraph| {
            MiningSession::over(p).measure(MeasureKind::Mni).min_support(2.0).max_edges(2)
        };
        let (_, cache) = configure(&prepared).run_recorded().unwrap();
        assert!(!cache.is_empty());
        // A small edge delta far from most of the graph.
        let (next, delta) = prepared
            .apply_updates(&[GraphUpdate::AddEdge(0, 1), GraphUpdate::RemoveEdge(2, 3)])
            .unwrap_or_else(|_| prepared.apply_updates(&[GraphUpdate::AddEdge(0, 2)]).unwrap());
        let cold = configure(&next).run().unwrap();
        let (incremental, next_cache) = configure(&next).run_delta(cache, &delta).unwrap();
        assert_eq!(incremental.len(), cold.len());
        for (a, b) in incremental.patterns.iter().zip(&cold.patterns) {
            assert_eq!(a.support.to_bits(), b.support.to_bits());
            assert_eq!(a.num_occurrences, b.num_occurrences);
            assert_eq!(
                ffsm_graph::canonical::canonical_code(&a.pattern),
                ffsm_graph::canonical::canonical_code(&b.pattern)
            );
        }
        assert_eq!(incremental.stats.candidates_evaluated, cold.stats.candidates_evaluated);
        assert_eq!(cold.stats.evaluations_reused, 0);
        assert_eq!(next_cache.len(), incremental.stats.candidates_evaluated);
    }

    #[test]
    fn run_delta_rejects_a_delta_from_another_lineage() {
        use ffsm_graph::GraphUpdate;
        let prepared = PreparedGraph::new(triangle_forest(3));
        let (_, cache) = MiningSession::over(&prepared).run_recorded().unwrap();
        // A delta whose post-batch vertex count does not match this graph.
        let other = PreparedGraph::new(triangle_forest(5));
        let (_, delta) =
            other.apply_updates(&[GraphUpdate::AddVertex(ffsm_graph::Label(0))]).unwrap();
        let err = MiningSession::over(&prepared).run_delta(cache, &delta).unwrap_err();
        assert!(matches!(err, FfsmError::InvalidConfig(_)), "{err:?}");
        // Same vertex count, different lineage: a pure-edge batch on a 9-vertex
        // path must still be rejected against the 9-vertex triangle forest.
        let path = PreparedGraph::new(ffsm_graph::patterns::uniform_path(9, ffsm_graph::Label(0)));
        let (_, cache) = MiningSession::over(&prepared).run_recorded().unwrap();
        let (_, delta) = path.apply_updates(&[GraphUpdate::RemoveEdge(0, 1)]).unwrap();
        let err = MiningSession::over(&prepared).run_delta(cache, &delta).unwrap_err();
        assert!(matches!(err, FfsmError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn custom_measure_plugs_in() {
        /// Half of MNI — still anti-monotone, so mining with it is sound.
        struct HalfMni;
        impl SupportMeasure for HalfMni {
            fn support(&self, occurrences: &OccurrenceSet) -> f64 {
                ffsm_core::measures::mni::mni(occurrences) as f64 / 2.0
            }
            fn is_anti_monotone(&self) -> bool {
                true
            }
            fn name(&self) -> &str {
                "MNI/2"
            }
        }
        let graph = triangle_forest(6);
        let custom: Arc<dyn SupportMeasure> = Arc::new(HalfMni);
        let halved =
            MiningSession::on(&graph).measure(custom).min_support(3.0).max_edges(3).run().unwrap();
        let full = MiningSession::on(&graph)
            .measure(MeasureKind::Mni)
            .min_support(6.0)
            .max_edges(3)
            .run()
            .unwrap();
        // τ = 3 under MNI/2 is exactly τ = 6 under MNI.
        assert_eq!(halved.len(), full.len());
        for (a, b) in halved.patterns.iter().zip(&full.patterns) {
            assert_eq!(a.support * 2.0, b.support);
        }
    }
}
