//! `approx_bench` — the bounds-first mining gate behind `BENCH_approx.json`.
//!
//! Bounds-first evaluation ([`MiningSession::bounds_first`]) buys its keep two
//! ways, and this bench gates both:
//!
//! * **short_circuit** — on an expensive measure (MIS: overlap graph plus
//!   branch-and-bound per candidate) over the dense-community workload, a
//!   meaningful fraction of candidate evaluations must be *decided by bound
//!   arguments alone* — containment chain, greedy packing, LP envelope —
//!   without running the exact independence search.  Gate: at least 20% of
//!   bounded evaluations short-circuit, and the bounds arm must not be slower
//!   than the exact arm by more than the overhead budget below.
//! * **overhead** — on a workload where the bounds never decide anything
//!   (MNI at a low threshold: the pre-enumeration index bound can't fall
//!   below tau, and MNI has no post-enumeration bound stage), the machinery
//!   must be nearly free.  Gate: bounds-on wall time within 5% of bounds-off
//!   (plus a small absolute slack so micro-runs on noisy CI machines cannot
//!   flake a sub-millisecond delta into a failure).
//!
//! Both workloads run interleaved, min-of-K, and each pair cross-checks that
//! the two arms mined the identical number of patterns (the set identity
//! proper lives in `tests/bounds_mining_differential.rs`).  The JSON report is
//! written *before* the gates, so it survives a failing assertion as a CI
//! artifact.
//!
//! Usage: `approx_bench [--community-size N] [--tau T] [--max-edges N]
//! [--rounds K] [--out PATH]` (defaults: community size 16, tau 8,
//! max-edges 2, 3 rounds, `BENCH_approx.json` — the exact-MIS arm grows
//! very fast with community size; 16 keeps the interleaved sweep under half
//! a minute while still dominating the bounds arm by more than an order of
//! magnitude).

use ffsm_bench::report::json_string;
use ffsm_bench::{flag_value, workloads};
use ffsm_core::MeasureKind;
use ffsm_miner::{MiningSession, PreparedGraph};
use std::time::{Duration, Instant};

/// One timed mining run; returns wall time, pattern count, and the two
/// bounds-first counters (both zero when `bounds` is off).
fn mine_once(
    prepared: &PreparedGraph,
    measure: MeasureKind,
    tau: f64,
    max_edges: usize,
    bounds: bool,
) -> (Duration, usize, u64, u64) {
    let start = Instant::now();
    let result = MiningSession::over(prepared)
        .measure(measure)
        .min_support(tau)
        .max_edges(max_edges)
        .bounds_first(bounds)
        .run()
        .expect("mine");
    (
        start.elapsed(),
        result.len(),
        result.stats.evaluations_bounded(),
        result.stats.bound_decided(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let community_size: usize = flag_value(&args, "--community-size")
        .map(|v| v.parse().expect("--community-size expects a number"))
        .unwrap_or(16);
    let tau: f64 = flag_value(&args, "--tau")
        .map(|v| v.parse().expect("--tau expects a number"))
        .unwrap_or(8.0);
    let max_edges: usize = flag_value(&args, "--max-edges")
        .map(|v| v.parse().expect("--max-edges expects a number"))
        .unwrap_or(2);
    let rounds: usize = flag_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds expects a number"))
        .unwrap_or(3);
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_approx.json").to_string();

    let (graph, _) = workloads::dense_community_workload(community_size);
    let prepared = PreparedGraph::new(graph);

    // Workload 1: MIS mining, exact vs bounds-first, interleaved.  MIS pays an
    // overlap-graph build plus a branch-and-bound search per candidate, so
    // every short-circuited evaluation is real work skipped.
    let (_, warm_patterns, _, _) = mine_once(&prepared, MeasureKind::Mis, tau, max_edges, false);
    let mut exact_wall = Duration::MAX;
    let mut bounds_wall = Duration::MAX;
    let mut bounded = 0u64;
    let mut decided = 0u64;
    for _ in 0..rounds {
        let (off, off_patterns, _, _) =
            mine_once(&prepared, MeasureKind::Mis, tau, max_edges, false);
        let (on, on_patterns, on_bounded, on_decided) =
            mine_once(&prepared, MeasureKind::Mis, tau, max_edges, true);
        assert_eq!(off_patterns, warm_patterns, "exact arm drifted");
        assert_eq!(on_patterns, warm_patterns, "bounds arm diverged from exact");
        exact_wall = exact_wall.min(off);
        bounds_wall = bounds_wall.min(on);
        (bounded, decided) = (on_bounded, on_decided);
    }
    let short_circuit = decided as f64 / (bounded as f64).max(1.0);
    println!(
        "mis_short_circuit (size {community_size}, tau {tau}, {warm_patterns} patterns): \
         exact {exact_wall:?}, bounds {bounds_wall:?}, \
         {decided}/{bounded} evaluations decided by bounds ({:.1}%)",
        short_circuit * 100.0
    );

    // Workload 2: MNI at a permissive threshold — the pre-enumeration bound
    // can never fall below tau and MNI has no post-enumeration stage, so the
    // bounds machinery runs on every candidate and decides none of them.
    let overhead_tau = 2.0;
    let (_, mni_patterns, _, _) =
        mine_once(&prepared, MeasureKind::Mni, overhead_tau, max_edges, false);
    let mut plain_wall = Duration::MAX;
    let mut idle_wall = Duration::MAX;
    let mut idle_bounded = 0u64;
    let mut idle_decided = 0u64;
    for _ in 0..rounds {
        let (off, off_patterns, _, _) =
            mine_once(&prepared, MeasureKind::Mni, overhead_tau, max_edges, false);
        let (on, on_patterns, on_bounded, on_decided) =
            mine_once(&prepared, MeasureKind::Mni, overhead_tau, max_edges, true);
        assert_eq!(off_patterns, mni_patterns, "plain arm drifted");
        assert_eq!(on_patterns, mni_patterns, "idle-bounds arm diverged");
        plain_wall = plain_wall.min(off);
        idle_wall = idle_wall.min(on);
        (idle_bounded, idle_decided) = (on_bounded, on_decided);
    }
    println!(
        "mni_idle_overhead (tau {overhead_tau}, {mni_patterns} patterns): \
         plain {plain_wall:?}, bounds-on {idle_wall:?}, \
         {idle_decided}/{idle_bounded} decided"
    );

    let ratio = |on: Duration, off: Duration| on.as_secs_f64() / off.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"approx_bounds_first\",\n  \"workloads\": [{}, {}],\n  \"entries\": [\n    \
         {{\"workload\": {}, \"measure\": \"MIS\", \"community_size\": {community_size}, \
         \"tau\": {tau}, \"patterns\": {warm_patterns}, \
         \"evaluations_bounded\": {bounded}, \"bound_decided\": {decided}, \
         \"short_circuit_fraction\": {short_circuit:.4}, \
         \"exact_us\": {}, \"bounds_us\": {}, \"wall_ratio\": {:.4}}},\n    \
         {{\"workload\": {}, \"measure\": \"MNI\", \"tau\": {overhead_tau}, \
         \"patterns\": {mni_patterns}, \
         \"evaluations_bounded\": {idle_bounded}, \"bound_decided\": {idle_decided}, \
         \"plain_us\": {}, \"bounds_on_us\": {}, \"overhead_ratio\": {:.4}}}\n  ]\n}}\n",
        json_string("mis_short_circuit"),
        json_string("mni_idle_overhead"),
        json_string("mis_short_circuit"),
        exact_wall.as_micros(),
        bounds_wall.as_micros(),
        ratio(bounds_wall, exact_wall),
        json_string("mni_idle_overhead"),
        plain_wall.as_micros(),
        idle_wall.as_micros(),
        ratio(idle_wall, plain_wall),
    );
    std::fs::write(&out_path, json).expect("write perf report");
    println!("wrote {out_path}");

    // Gate 1: the expensive-measure workload must short-circuit at least 20%
    // of its bounded evaluations, and the savings must show up as wall time no
    // worse than the exact arm (plus absolute slack for micro-run noise).
    assert!(
        short_circuit >= 0.20,
        "mis_short_circuit: only {decided}/{bounded} evaluations \
         ({:.1}%) were decided by bounds — below the 20% gate",
        short_circuit * 100.0
    );
    assert!(
        bounds_wall
            <= exact_wall
                + Duration::from_nanos(exact_wall.as_nanos() as u64 / 20)
                + Duration::from_millis(2),
        "mis_short_circuit: bounds arm {bounds_wall:?} is slower than exact arm {exact_wall:?} \
         beyond the 5% + 2ms budget"
    );

    // Gate 2: when the bounds never decide anything, the machinery must cost
    // at most 5% (plus slack) — and it must really have been idle, or the
    // workload no longer measures pure overhead.
    assert_eq!(
        idle_decided, 0,
        "mni_idle_overhead: {idle_decided} evaluations short-circuited — the workload no longer \
         measures pure overhead"
    );
    assert!(idle_bounded > 0, "mni_idle_overhead: bounds machinery never ran");
    let budget =
        Duration::from_nanos(plain_wall.as_nanos() as u64 / 20).max(Duration::from_millis(2));
    let overhead = idle_wall.saturating_sub(plain_wall);
    assert!(
        overhead <= budget,
        "mni_idle_overhead: bounds-on {idle_wall:?} exceeds plain {plain_wall:?} by {overhead:?} \
         (budget {budget:?}) — idle bounds evaluation is no longer ~free"
    );
}
