//! E5 — end-to-end frequent-subgraph mining time per support measure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffsm_core::measures::MeasureKind;
use ffsm_miner::{MiningSession, PreparedGraph};
use std::hint::black_box;
use std::time::Duration;

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    let dataset = ffsm_graph::datasets::chemical_like(30, 7);
    // Prepare once outside the timed loop: the bench measures the per-session
    // query cost, which is what a serving deployment pays repeatedly.
    let prepared = PreparedGraph::new(dataset.graph);
    for measure in [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc, MeasureKind::Mis] {
        group.bench_function(BenchmarkId::new("chemical_tau10", measure.name()), |b| {
            b.iter(|| {
                let result = MiningSession::over(&prepared)
                    .measure(measure)
                    .min_support(10.0)
                    .max_edges(3)
                    .run()
                    .expect("valid session");
                black_box(result.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
