//! The unified mining engine behind [`crate::MiningSession`].
//!
//! One level-synchronous pattern-growth loop serves every mode the old API split
//! across three entry points:
//!
//! * **threshold mining** (old `Miner::mine`) — fixed threshold τ, breadth-first
//!   emission;
//! * **parallel mining** (old `mine_parallel`) — the same loop with the level's
//!   support evaluations fanned out over scoped worker threads; the partition and
//!   merge order are fixed, so results are identical to a single-threaded run;
//! * **top-k mining** (old `mine_top_k`) — the threshold starts at the floor and
//!   rises to the running k-th best support, pruning branch-and-bound style; sound
//!   for every anti-monotone measure (Definition 2.2.2 of the paper).
//!
//! Support is computed through an `Arc<dyn SupportMeasure>`, so built-in and
//! user-defined measures take exactly the same path.

use crate::extension::{dedupe_by_canonical_code, extensions, seed_patterns};
use crate::types::{FrequentPattern, MiningResult, MiningStats};
use ffsm_core::{EnumeratorBackend, GraphIndex, OccurrenceSet, SupportMeasure};
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_graph::{LabeledGraph, Pattern};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Canonical, validated configuration the engine runs from (the session builder's
/// output).
pub(crate) struct EngineConfig {
    /// Support threshold τ (the floor threshold in top-k mode).
    pub min_support: f64,
    /// Occurrence-enumeration settings.
    pub iso_config: IsoConfig,
    /// Stop growing patterns beyond this many edges.
    pub max_pattern_edges: usize,
    /// Safety cap on reported patterns (threshold mode).
    pub max_patterns: usize,
    /// Safety cap on support evaluations.
    pub max_evaluations: usize,
    /// Worker threads for level evaluation (already resolved to >= 1).
    pub threads: usize,
    /// `Some(k)` switches to top-k mode.
    pub top_k: Option<usize>,
}

/// Callback invoked per accepted pattern (threshold mode: every emitted pattern;
/// top-k mode: every pattern entering the running top-k, which may later be evicted).
pub(crate) type PatternCallback<'a> = Box<dyn FnMut(&FrequentPattern) + 'a>;

/// Evaluate the support of every candidate, in order, on `threads` workers.
///
/// Candidates are split round-robin and merged back in candidate order, so the result
/// does not depend on the thread count.  `index` is the session-wide per-graph
/// matching index (`None` under the naive enumerator backend), shared read-only by
/// every worker so no candidate evaluation rebuilds it.
fn evaluate_level(
    graph: &LabeledGraph,
    index: Option<&GraphIndex>,
    candidates: &[Pattern],
    measure: &Arc<dyn SupportMeasure>,
    config: &EngineConfig,
) -> Vec<(f64, usize)> {
    let evaluate = |pattern: &Pattern| -> (f64, usize) {
        let occ = match index {
            Some(index) => {
                OccurrenceSet::enumerate_with_index(pattern, graph, index, config.iso_config)
            }
            None => OccurrenceSet::enumerate(pattern, graph, config.iso_config),
        };
        let num_occurrences = occ.num_occurrences();
        (measure.support(&occ), num_occurrences)
    };
    let workers = config.threads.min(candidates.len());
    if workers <= 1 {
        return candidates.iter().map(evaluate).collect();
    }
    let mut results = vec![(0.0, 0usize); candidates.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let evaluate = &evaluate;
            handles.push(scope.spawn(move || {
                candidates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % workers == w)
                    .map(|(i, p)| (i, evaluate(p)))
                    .collect::<Vec<(usize, (f64, usize))>>()
            }));
        }
        for handle in handles {
            for (i, r) in handle.join().expect("mining worker panicked") {
                results[i] = r;
            }
        }
    });
    results
}

/// Insert `found` into the running top-k list (sorted by descending support, ties by
/// fewer edges first) and return the updated rising threshold.
fn insert_top_k(
    best: &mut Vec<FrequentPattern>,
    found: FrequentPattern,
    k: usize,
    floor: f64,
) -> f64 {
    best.push(found);
    best.sort_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pattern.num_edges().cmp(&b.pattern.num_edges()))
    });
    if best.len() > k {
        best.truncate(k);
    }
    if best.len() == k {
        best.last().map(|p| p.support).unwrap_or(floor).max(floor)
    } else {
        floor
    }
}

/// Run the mining loop.
pub(crate) fn run_engine(
    graph: &LabeledGraph,
    measure: &Arc<dyn SupportMeasure>,
    config: &EngineConfig,
    mut on_pattern: Option<PatternCallback<'_>>,
) -> MiningResult {
    let start = Instant::now();
    let mut stats = MiningStats::default();
    let mut seen: HashSet<ffsm_graph::canonical::CanonicalCode> = HashSet::new();
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let mut threshold = config.min_support;
    let floor = config.min_support;
    let alphabet = graph.distinct_labels();
    // The per-graph matching index is built exactly once per mining run and shared
    // (read-only) by every candidate evaluation at every level — never per pattern.
    let index = match config.iso_config.backend {
        EnumeratorBackend::CandidateSpace => Some(GraphIndex::build(graph)),
        EnumeratorBackend::Naive => None,
    };

    let seeds = seed_patterns(graph);
    stats.candidates_generated += seeds.len();
    let mut level: Vec<Pattern> = dedupe_by_canonical_code(seeds, &mut seen);

    while !level.is_empty() {
        // Respect the evaluation cap by trimming the level.
        let remaining = config.max_evaluations.saturating_sub(stats.candidates_evaluated);
        if level.len() > remaining {
            level.truncate(remaining);
            stats.truncated = true;
        }
        if level.is_empty() {
            break;
        }
        let supports = evaluate_level(graph, index.as_ref(), &level, measure, config);
        stats.candidates_evaluated += level.len();

        // Apply the (possibly rising) threshold in candidate order.
        let mut survivors: Vec<Pattern> = Vec::new();
        for (pattern, (support, num_occurrences)) in level.into_iter().zip(supports) {
            match config.top_k {
                None => {
                    if support >= threshold {
                        if frequent.len() >= config.max_patterns {
                            stats.truncated = true;
                            continue;
                        }
                        let found =
                            FrequentPattern { pattern: pattern.clone(), support, num_occurrences };
                        if let Some(callback) = on_pattern.as_mut() {
                            callback(&found);
                        }
                        frequent.push(found);
                        survivors.push(pattern);
                    } else {
                        stats.candidates_pruned += 1;
                    }
                }
                Some(k) => {
                    if support >= threshold {
                        let found =
                            FrequentPattern { pattern: pattern.clone(), support, num_occurrences };
                        if let Some(callback) = on_pattern.as_mut() {
                            callback(&found);
                        }
                        threshold = insert_top_k(&mut frequent, found, k, floor);
                        survivors.push(pattern);
                    } else {
                        stats.candidates_pruned += 1;
                    }
                }
            }
        }
        if stats.truncated {
            break;
        }

        // Next level: one-edge extensions of every surviving pattern.  Pruned
        // candidates are never extended — sound because the measure is anti-monotone.
        let mut next: Vec<Pattern> = Vec::new();
        for pattern in &survivors {
            if pattern.num_edges() >= config.max_pattern_edges {
                continue;
            }
            let candidates = extensions(pattern, &alphabet);
            stats.candidates_generated += candidates.len();
            next.extend(dedupe_by_canonical_code(candidates, &mut seen));
        }
        level = next;
    }

    stats.elapsed = start.elapsed();
    MiningResult { patterns: frequent, final_threshold: threshold, stats }
}
