//! Integration tests for Section 4.5: simple vs harmful vs structural overlap, and
//! the overlap-graph variants they induce.

use ffsm::core::measures::MeasureConfig;
use ffsm::core::occurrences::OccurrenceSet;
use ffsm::core::overlap::{OverlapAnalysis, OverlapKind};
use ffsm::core::SupportMeasures;
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{figures, generators};
use ffsm::hypergraph::SearchBudget;
use proptest::prelude::*;

#[test]
fn figure9_and_10_statements() {
    // Figure 9: SO(g1,g2) holds, HO(g1,g2) does not; SO and HO both hold for (g1,g3).
    let ex9 = figures::figure9();
    let occ9 = OccurrenceSet::enumerate(&ex9.pattern, &ex9.graph, IsoConfig::default());
    let a9 = OverlapAnalysis::new(&occ9);
    let emb9 = occ9.embeddings();
    let g1 = emb9.iter().position(|e| e == &vec![0, 1, 2]).unwrap();
    let g2 = emb9.iter().position(|e| e == &vec![4, 2, 3]).unwrap();
    let g3 = emb9.iter().position(|e| e == &vec![4, 2, 1]).unwrap();
    assert!(a9.structural_overlap(g1, g2) && !a9.harmful_overlap(g1, g2));
    assert!(a9.structural_overlap(g1, g3) && a9.harmful_overlap(g1, g3));

    // Figure 10: HO(f1,f2) without SO; (f2,f3) overlap simply with neither HO nor SO.
    let ex10 = figures::figure10();
    let occ10 = OccurrenceSet::enumerate(&ex10.pattern, &ex10.graph, IsoConfig::default());
    let a10 = OverlapAnalysis::new(&occ10);
    let emb10 = occ10.embeddings();
    let f1 = emb10.iter().position(|e| e == &vec![0, 1, 2, 3]).unwrap();
    let f2 = emb10.iter().position(|e| e == &vec![3, 4, 5, 0]).unwrap();
    let f3 = emb10.iter().position(|e| e == &vec![6, 7, 8, 3]).unwrap();
    assert!(a10.harmful_overlap(f1, f2) && !a10.structural_overlap(f1, f2));
    assert!(a10.simple_overlap(f2, f3));
    assert!(!a10.harmful_overlap(f2, f3) && !a10.structural_overlap(f2, f3));
}

#[test]
fn mis_under_weaker_overlap_is_between_mis_and_occurrence_count() {
    for example in figures::all_figures() {
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        let total = occ.num_occurrences();
        let m = SupportMeasures::new(occ.clone(), MeasureConfig::default());
        let classic = m.mis().value;
        let analysis = OverlapAnalysis::new(&occ);
        for kind in [OverlapKind::Harmful, OverlapKind::Structural] {
            let relaxed = analysis.mis_under(kind, SearchBudget::default());
            assert!(relaxed >= classic, "{:?} MIS below classic MIS on {}", kind, example.name);
            assert!(relaxed <= total, "{:?} MIS above occurrence count on {}", kind, example.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn overlap_implications_on_random_workloads(seed in 0u64..5_000) {
        let graph = generators::gnm_random(30, 70, 2, seed);
        let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed ^ 0xd1) else { return Ok(()); };
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::with_limit(400));
        prop_assume!(occ.num_occurrences() >= 2);
        let analysis = OverlapAnalysis::new(&occ);
        let m = occ.num_occurrences();
        for i in 0..m {
            for j in (i + 1)..m {
                let simple = analysis.simple_overlap(i, j);
                let harmful = analysis.harmful_overlap(i, j);
                let structural = analysis.structural_overlap(i, j);
                // Both new notions are weaker than (imply) simple overlap.
                prop_assert!(!harmful || simple);
                prop_assert!(!structural || simple);
                // Symmetry of all three relations.
                prop_assert_eq!(simple, analysis.simple_overlap(j, i));
                prop_assert_eq!(harmful, analysis.harmful_overlap(j, i));
                prop_assert_eq!(structural, analysis.structural_overlap(j, i));
            }
        }
        // Overlap-graph edge counts respect the implication order.
        let e_simple = analysis.overlap_edge_count(OverlapKind::Simple);
        prop_assert!(analysis.overlap_edge_count(OverlapKind::Harmful) <= e_simple);
        prop_assert!(analysis.overlap_edge_count(OverlapKind::Structural) <= e_simple);
    }
}
