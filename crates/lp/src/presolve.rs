//! Presolve for the 0/1 covering LPs used by the support-measure relaxations.
//!
//! Occurrence hypergraphs translate into covering LPs with a lot of redundancy:
//! duplicate rows (automorphic occurrences), dominated rows (an occurrence whose image
//! set contains another occurrence's image set contributes a weaker constraint), and
//! columns that appear in no row.  Removing these before the simplex call does not
//! change the optimum but can shrink the tableau dramatically — experiment E13
//! measures the effect on νMVC computation time.
//!
//! The rules here are specialised to the *unit-cost covering* structure
//! (`min Σ x_v, Σ_{v∈e} x_v ≥ 1, x ≥ 0`), which is the only LP family the support
//! measures generate:
//!
//! 1. **empty column** — a ground-set element contained in no row can be dropped;
//! 2. **duplicate row** — identical rows are kept once;
//! 3. **dominated row** — a row that is a superset of another row is implied by it;
//! 4. **singleton row** — a row `{v}` forces `x_v = 1`; the contribution is added to
//!    a constant offset and every row containing `v` is dropped.

use crate::{covering_lp, LpError, Problem, Solution};

/// Outcome of presolving a covering instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PresolvedCovering {
    /// Surviving rows, expressed over the *reduced* column indices.
    pub rows: Vec<Vec<usize>>,
    /// Map from reduced column index to original element index.
    pub columns: Vec<usize>,
    /// Original elements fixed to 1 by singleton rows (their cost is in `offset`).
    pub fixed: Vec<usize>,
    /// Constant added to the reduced LP's objective to recover the original optimum.
    pub offset: f64,
    /// Rule-by-rule counts.
    pub stats: PresolveStats,
}

/// How many reductions each rule performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PresolveStats {
    /// Duplicate rows dropped.
    pub duplicate_rows: usize,
    /// Dominated (superset) rows dropped.
    pub dominated_rows: usize,
    /// Variables fixed to one by singleton rows.
    pub fixed_variables: usize,
    /// Rows dropped because a fixed variable already covers them.
    pub covered_rows: usize,
    /// Columns dropped because no surviving row uses them.
    pub empty_columns: usize,
}

/// `true` if sorted `a` ⊆ sorted `b`.
fn is_subset(a: &[usize], b: &[usize]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = 0;
    for &x in a {
        while bi < b.len() && b[bi] < x {
            bi += 1;
        }
        if bi >= b.len() || b[bi] != x {
            return false;
        }
        bi += 1;
    }
    true
}

/// Presolve the covering instance `min Σ x_v : Σ_{v∈set} x_v ≥ 1` over elements
/// `0..num_elements`.
pub fn presolve_covering(num_elements: usize, sets: &[Vec<usize>]) -> PresolvedCovering {
    let mut stats = PresolveStats::default();
    let mut rows: Vec<Vec<usize>> = sets
        .iter()
        .map(|s| {
            let mut r: Vec<usize> = s.iter().copied().filter(|&v| v < num_elements).collect();
            r.sort_unstable();
            r.dedup();
            r
        })
        .filter(|r| !r.is_empty())
        .collect();
    let mut fixed: Vec<usize> = Vec::new();

    loop {
        let mut changed = false;

        // Rule 4: singleton rows.
        let singletons: std::collections::BTreeSet<usize> =
            rows.iter().filter(|r| r.len() == 1).map(|r| r[0]).collect();
        if !singletons.is_empty() {
            for &v in &singletons {
                if !fixed.contains(&v) {
                    fixed.push(v);
                    stats.fixed_variables += 1;
                }
            }
            let before = rows.len();
            rows.retain(|r| !r.iter().any(|v| singletons.contains(v)));
            stats.covered_rows += before - rows.len();
            changed = true;
        }

        // Rules 2 and 3: duplicates and dominated rows.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by_key(|&i| rows[i].len());
        let mut keep = vec![true; rows.len()];
        for (pos, &i) in order.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            for &j in &order[pos + 1..] {
                if keep[j] && is_subset(&rows[i], &rows[j]) {
                    keep[j] = false;
                    if rows[i].len() == rows[j].len() {
                        stats.duplicate_rows += 1;
                    } else {
                        stats.dominated_rows += 1;
                    }
                    changed = true;
                }
            }
        }
        if keep.iter().any(|&k| !k) {
            rows = rows
                .into_iter()
                .enumerate()
                .filter_map(|(i, r)| if keep[i] { Some(r) } else { None })
                .collect();
        }

        if !changed {
            break;
        }
    }

    // Rule 1: densify the surviving columns.
    let mut column_map: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();
    for r in &rows {
        for &v in r {
            let next = column_map.len();
            column_map.entry(v).or_insert(next);
        }
    }
    stats.empty_columns = num_elements.saturating_sub(column_map.len() + fixed.len());
    let columns: Vec<usize> = {
        let mut cols = vec![0usize; column_map.len()];
        for (&orig, &idx) in &column_map {
            cols[idx] = orig;
        }
        cols
    };
    let rows: Vec<Vec<usize>> =
        rows.iter().map(|r| r.iter().map(|v| column_map[v]).collect()).collect();
    fixed.sort_unstable();
    PresolvedCovering { offset: fixed.len() as f64, rows, columns, fixed, stats }
}

impl PresolvedCovering {
    /// Build the reduced covering LP (empty when everything was presolved away).
    pub fn reduced_problem(&self) -> Problem {
        covering_lp(self.columns.len(), &self.rows)
    }

    /// Solve the reduced LP and lift the result back to the original instance: the
    /// objective gains `offset` and fixed variables are reported at value 1.
    pub fn solve(&self, num_elements: usize) -> Result<Solution, LpError> {
        let reduced = if self.columns.is_empty() {
            Solution { objective: 0.0, values: Vec::new(), pivots: 0 }
        } else {
            self.reduced_problem().solve()?
        };
        let mut values = vec![0.0; num_elements];
        for (i, &orig) in self.columns.iter().enumerate() {
            values[orig] = reduced.values[i];
        }
        for &v in &self.fixed {
            values[v] = 1.0;
        }
        Ok(Solution { objective: reduced.objective + self.offset, values, pivots: reduced.pivots })
    }
}

/// Convenience: presolve + solve a covering instance in one call.
pub fn solve_covering_presolved(
    num_elements: usize,
    sets: &[Vec<usize>],
) -> Result<Solution, LpError> {
    presolve_covering(num_elements, sets).solve(num_elements)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_objective(num_elements: usize, sets: &[Vec<usize>]) -> f64 {
        covering_lp(num_elements, sets).solve().unwrap().objective
    }

    #[test]
    fn duplicate_and_dominated_rows_removed() {
        let sets = vec![vec![0, 1], vec![0, 1], vec![0, 1, 2], vec![3, 4]];
        let p = presolve_covering(5, &sets);
        assert_eq!(p.stats.duplicate_rows, 1);
        assert_eq!(p.stats.dominated_rows, 1);
        assert_eq!(p.rows.len(), 2);
        let sol = p.solve(5).unwrap();
        assert!((sol.objective - direct_objective(5, &sets)).abs() < 1e-7);
    }

    #[test]
    fn singleton_rows_fix_variables() {
        let sets = vec![vec![2], vec![2, 3], vec![0, 1]];
        let p = presolve_covering(4, &sets);
        assert_eq!(p.fixed, vec![2]);
        assert_eq!(p.offset, 1.0);
        assert_eq!(p.stats.fixed_variables, 1);
        let sol = p.solve(4).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-7);
        assert!((sol.values[2] - 1.0).abs() < 1e-9);
        assert!((sol.objective - direct_objective(4, &sets)).abs() < 1e-7);
    }

    #[test]
    fn presolve_preserves_optimum_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(4..12);
            let m = rng.gen_range(1..20);
            let sets: Vec<Vec<usize>> = (0..m)
                .map(|_| {
                    let k = rng.gen_range(1..5);
                    let mut s: Vec<usize> = (0..k).map(|_| rng.gen_range(0..n)).collect();
                    s.sort_unstable();
                    s.dedup(); // hyperedges are sets; covering_lp would sum duplicates
                    s
                })
                .collect();
            let direct = direct_objective(n, &sets);
            let presolved = solve_covering_presolved(n, &sets).unwrap();
            assert!(
                (direct - presolved.objective).abs() < 1e-6,
                "seed {seed}: direct {direct} presolved {}",
                presolved.objective
            );
            // The lifted point must be feasible for every original row.
            for set in &sets {
                let activity: f64 = set.iter().map(|&v| presolved.values[v]).sum();
                assert!(activity >= 1.0 - 1e-6, "seed {seed}: row {set:?} violated");
            }
        }
    }

    #[test]
    fn fully_presolved_instance_needs_no_simplex() {
        // Only singleton rows.
        let sets = vec![vec![0], vec![3], vec![0]];
        let p = presolve_covering(4, &sets);
        assert!(p.rows.is_empty());
        assert!(p.columns.is_empty());
        let sol = p.solve(4).unwrap();
        assert_eq!(sol.pivots, 0);
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instance() {
        let p = presolve_covering(3, &[]);
        assert!(p.rows.is_empty());
        assert_eq!(p.offset, 0.0);
        assert_eq!(p.stats.empty_columns, 3);
        let sol = p.solve(3).unwrap();
        assert_eq!(sol.objective, 0.0);
        assert_eq!(sol.values, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn out_of_range_elements_are_ignored() {
        let sets = vec![vec![0, 99], vec![1]];
        let p = presolve_covering(2, &sets);
        let sol = p.solve(2).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_fractional_optimum_survives_presolve() {
        // No rule fires on the triangle instance; optimum stays 1.5.
        let sets = vec![vec![0, 1], vec![1, 2], vec![0, 2]];
        let p = presolve_covering(3, &sets);
        assert_eq!(p.rows.len(), 3);
        assert_eq!(p.stats, PresolveStats::default());
        let sol = p.solve(3).unwrap();
        assert!((sol.objective - 1.5).abs() < 1e-7);
    }
}
