//! Differential harness for partitioned mining, alongside
//! `overlap_differential.rs` / `match_differential.rs` / `dynamic_differential.rs`
//! / `obs_differential.rs`:
//!
//! * **sharded == unsharded, bit for bit** — splitting the data graph into K
//!   interior+halo shards and merging the per-shard occurrences (anchor-shard
//!   dedup + exact support merge) reproduces the whole-graph engine's results
//!   exactly: canonical codes, support *bits* (not epsilon), occurrence counts,
//!   final threshold, completion and evaluation counts — across all four paper
//!   measures (MNI / MI / MVC / MIS), all three enumerator backends, both
//!   partition strategies, and shard counts {1, 2, 3, 7} (proptest);
//! * **spill-and-reload changes nothing** — evicting shards to disk and
//!   reloading them through the LRU store is invisible to the mined results,
//!   and the store actually worked (loads observed, residency capped).
//!
//! The proptest shim seeds each generator deterministically from the test
//! name, so every run replays the same fixed case sequence.

use ffsm::core::{EnumeratorBackend, MeasureKind};
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::generators;
use ffsm::miner::{MiningResult, MiningSession, PreparedGraph, ShardedSession};
use ffsm::shard::{PartitionSpec, PartitionStrategy, PartitionedGraph};
use proptest::prelude::*;
use std::sync::Arc;

const MEASURES: [MeasureKind; 4] =
    [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc, MeasureKind::Mis];
const BACKENDS: [EnumeratorBackend; 3] =
    [EnumeratorBackend::CandidateSpace, EnumeratorBackend::Naive, EnumeratorBackend::Auto];
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// Everything observable about a mined pattern, with supports compared by bit
/// pattern — the contract is identity, not closeness.
type PatternFingerprint = (Vec<u64>, u64, usize);

fn fingerprints(result: &MiningResult) -> Vec<PatternFingerprint> {
    result
        .patterns
        .iter()
        .map(|p| {
            (canonical_code(&p.pattern).as_slice().to_vec(), p.support.to_bits(), p.num_occurrences)
        })
        .collect()
}

/// Mine `graph` whole (the oracle) and through a K-shard partition, and demand
/// bit-for-bit identity on everything a caller can observe.
fn assert_sharded_matches(
    graph: &ffsm::graph::LabeledGraph,
    measure: MeasureKind,
    backend: EnumeratorBackend,
    tau: f64,
    max_edges: usize,
    spec: PartitionSpec,
    context: &str,
) {
    let prepared = PreparedGraph::new(graph.clone());
    let whole = MiningSession::over(&prepared)
        .measure(measure)
        .min_support(tau)
        .max_edges(max_edges)
        .enumerator(backend)
        .run()
        .expect("unsharded mine");
    let partitioned = Arc::new(PartitionedGraph::build(graph, spec).expect("partition"));
    let sharded = ShardedSession::over(&partitioned)
        .measure(measure)
        .min_support(tau)
        .max_edges(max_edges)
        .enumerator(backend)
        .run()
        .expect("sharded mine");
    assert_eq!(fingerprints(&sharded), fingerprints(&whole), "{context}: patterns");
    assert_eq!(
        sharded.final_threshold.to_bits(),
        whole.final_threshold.to_bits(),
        "{context}: threshold"
    );
    assert_eq!(sharded.completion(), whole.completion(), "{context}: completion");
    assert_eq!(
        sharded.stats.candidates_evaluated, whole.stats.candidates_evaluated,
        "{context}: evaluations"
    );
    assert_eq!(
        sharded.stats.candidates_generated, whole.stats.candidates_generated,
        "{context}: generations"
    );
}

#[test]
fn sharded_matches_unsharded_across_measures_backends_and_strategies() {
    // Two communities, so vertex-range cuts straddle real structure; label
    // skew, so label-aware packing differs from vertex ranges.
    let graph = generators::community_graph(4, 12, 0.25, 0.02, 3, 41);
    for (i, measure) in MEASURES.into_iter().enumerate() {
        let backend = BACKENDS[i % BACKENDS.len()];
        for shards in SHARD_COUNTS {
            for strategy in [PartitionStrategy::VertexRange, PartitionStrategy::LabelAware] {
                let spec = PartitionSpec { num_shards: shards, halo_depth: 2, strategy };
                assert_sharded_matches(
                    &graph,
                    measure,
                    backend,
                    3.0,
                    2,
                    spec,
                    &format!("{measure} under {backend:?}, {shards} {strategy} shards"),
                );
            }
        }
    }
}

#[test]
fn spilled_partition_mines_identically_and_exercises_the_store() {
    let graph = generators::gnm_random(60, 140, 3, 77);
    let prepared = PreparedGraph::new(graph.clone());
    let whole =
        MiningSession::over(&prepared).min_support(3.0).max_edges(2).run().expect("unsharded mine");
    for shards in [2usize, 3, 7] {
        let partitioned = Arc::new(
            PartitionedGraph::build(&graph, PartitionSpec::vertex_range(shards, 2))
                .expect("partition"),
        );
        let dir = std::env::temp_dir()
            .join(format!("ffsm-shard-differential-{}-{shards}", std::process::id()));
        partitioned.spill_to_disk(&dir, 1).expect("spill");
        let (sharded, run) = ShardedSession::over(&partitioned)
            .min_support(3.0)
            .max_edges(2)
            .run_detailed()
            .expect("sharded mine");
        std::fs::remove_dir_all(&dir).expect("cleanup");
        assert_eq!(fingerprints(&sharded), fingerprints(&whole), "{shards} shards, spilled");
        assert!(run.store.loads > 0, "{shards} shards: the store never reloaded a shard");
        assert_eq!(run.store.resident_shards, 1, "{shards} shards: residency cap ignored");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Random graphs, every measure/backend pairing (seed-driven), every shard
    /// count: the partitioned engine is indistinguishable from the oracle.
    #[test]
    fn sharded_equals_unsharded_on_random_graphs(
        seed in 0u64..10_000,
        tau in 2usize..5,
    ) {
        let graph = generators::gnm_random(30, 64, 2, seed);
        let measure = MEASURES[(seed % 4) as usize];
        let backend = BACKENDS[((seed / 4) % 3) as usize];
        let strategy = if seed % 2 == 0 {
            PartitionStrategy::VertexRange
        } else {
            PartitionStrategy::LabelAware
        };
        for shards in SHARD_COUNTS {
            let spec = PartitionSpec { num_shards: shards, halo_depth: 2, strategy };
            assert_sharded_matches(
                &graph,
                measure,
                backend,
                tau as f64,
                2,
                spec,
                &format!("seed {seed}, {measure} under {backend:?}, {shards} {strategy} shards"),
            );
        }
    }
}
