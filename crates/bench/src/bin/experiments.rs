//! Experiment harness: regenerates every table of `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ffsm-bench --bin experiments -- [e1|e2|...|e14|all] [--quick]
//! ```
//!
//! Each experiment prints one or more Markdown tables; `all` runs everything in
//! order.  `--quick` shrinks the workloads (used by CI-style smoke runs).

use ffsm_bench::report::{fmt_value, Table};
use ffsm_bench::workloads;
use ffsm_bench::{format_duration, timed};
use ffsm_core::measures::{MeasureConfig, MeasureKind, MiStrategy, MvcAlgorithm, SupportMeasures};
use ffsm_core::occurrences::OccurrenceSet;
use ffsm_core::overlap::{OverlapAnalysis, OverlapKind};
use ffsm_core::verify_bounding_chain;
use ffsm_graph::figures;
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_graph::{generators, LabeledGraph, Pattern};
use ffsm_hypergraph::SearchBudget;
use ffsm_miner::MiningSession;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    let selected = if which.is_empty() || which.iter().any(|a| a == "all") {
        vec![
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    } else {
        which
    };
    println!("# ffsm experiment harness (quick = {quick})");
    for exp in &selected {
        match exp.as_str() {
            "e1" => e1_figures(),
            "e2" => e2_bounding_chain(quick),
            "e3" => e3_value_spectrum(quick),
            "e4" => e4_runtime(quick),
            "e5" => e5_mining(quick),
            "e6" => e6_anti_monotonicity(quick),
            "e7" => e7_ablation(quick),
            "e8" => e8_overlap(quick),
            "e9" => e9_hypergraphs(),
            "e10" => e10_decomposition(quick),
            "e11" => e11_overlap_variants(quick),
            "e12" => e12_reduction(quick),
            "e13" => e13_mcp_spectrum(quick),
            "e14" => e14_search_schemes(quick),
            other => eprintln!("unknown experiment {other:?} (expected e1..e14 or all)"),
        }
    }
}

fn measures_for(pattern: &Pattern, graph: &LabeledGraph, limit: usize) -> SupportMeasures {
    let occ = OccurrenceSet::enumerate(pattern, graph, IsoConfig::with_limit(limit));
    SupportMeasures::new(occ, MeasureConfig::default())
}

/// E1: exact measure values on the paper's figure examples.
fn e1_figures() {
    let mut table = Table::new(
        "E1 — paper figure examples (Figures 1, 2, 4, 5, 6, 8, 9): support values",
        &["figure", "occ", "inst", "MIS", "MIES", "nuMVC", "MVC", "MI", "MNI", "paper statement"],
    );
    for example in figures::all_figures() {
        let m = measures_for(&example.pattern, &example.graph, 1_000_000);
        table.add_row(vec![
            example.name.to_string(),
            m.occurrence_count().to_string(),
            m.instance_count().to_string(),
            m.mis().value.to_string(),
            m.mies().value.to_string(),
            fmt_value(m.relaxed_mvc()),
            m.mvc().value.to_string(),
            m.mi().to_string(),
            m.mni().to_string(),
            example.notes.to_string(),
        ]);
    }
    table.print();
}

/// E2: bounding-chain validation on random graphs.
fn e2_bounding_chain(quick: bool) {
    let trials = if quick { 8 } else { 30 };
    let mut table = Table::new(
        "E2 — bounding chain σMIS=σMIES ≤ νMIES=νMVC ≤ σMVC ≤ σMI ≤ σMNI on random workloads",
        &[
            "graph",
            "pattern edges",
            "occ",
            "MIS",
            "MIES",
            "nuMVC",
            "MVC",
            "MI",
            "MNI",
            "chain holds",
        ],
    );
    let mut violations = 0usize;
    for seed in 0..trials as u64 {
        let graph = match seed % 3 {
            0 => generators::gnm_random(120, 300, 3, seed),
            1 => generators::barabasi_albert(150, 3, 4, seed),
            _ => generators::community_graph(4, 25, 0.25, 0.01, 6, seed),
        };
        let pattern_edges = 2 + (seed % 3) as usize;
        let Some((pattern, _)) = generators::sample_pattern(&graph, pattern_edges, seed * 7 + 1)
        else {
            continue;
        };
        let config = MeasureConfig {
            iso_config: IsoConfig::with_limit(200_000),
            ..MeasureConfig::default()
        };
        let report = verify_bounding_chain(&pattern, &graph, &config);
        if !report.holds() {
            violations += 1;
        }
        table.add_row(vec![
            format!("seed{seed}"),
            pattern.num_edges().to_string(),
            report.occurrences.to_string(),
            report.mis.to_string(),
            report.mies.to_string(),
            fmt_value(report.relaxed_mvc),
            report.mvc.to_string(),
            report.mi.to_string(),
            report.mni.to_string(),
            report.holds().to_string(),
        ]);
    }
    table.print();
    println!("chain violations: {violations} (expected 0)\n");
}

/// E3: support value spectrum across pattern shapes and datasets.
fn e3_value_spectrum(quick: bool) {
    let suite =
        if quick { workloads::small_dataset_suite(42) } else { workloads::dataset_suite(42) };
    for dataset in suite {
        let mut table = Table::new(
            &format!("E3 — value spectrum on `{}` ({})", dataset.name, dataset.description),
            &["pattern", "occ", "inst", "MIS", "nuMVC", "MVC", "MI", "MNI"],
        );
        for np in workloads::pattern_suite() {
            let m = measures_for(&np.pattern, &dataset.graph, 100_000);
            if m.occurrence_count() == 0 {
                continue;
            }
            table.add_row(vec![
                np.name.clone(),
                m.occurrence_count().to_string(),
                m.instance_count().to_string(),
                m.mis().value.to_string(),
                fmt_value(m.relaxed_mvc()),
                m.mvc().value.to_string(),
                m.mi().to_string(),
                m.mni().to_string(),
            ]);
        }
        table.print();
    }
}

/// E4: computation time vs number of occurrences.
fn e4_runtime(quick: bool) {
    let sizes: Vec<usize> = if quick { vec![16, 64, 256] } else { vec![16, 64, 256, 1024, 4096] };
    let mut table = Table::new(
        "E4 — measure computation time vs number of occurrences (star-overlap workload)",
        &["occurrences", "MNI", "MI", "MVC exact", "MVC greedy", "MIS", "MIES", "nuMVC (LP)"],
    );
    for target in sizes {
        let (graph, pattern) = workloads::star_overlap_workload(target);
        let occ = workloads::enumerate(&pattern, &graph, 2_000_000);
        let n = occ.num_occurrences();
        let config = MeasureConfig::default();
        let m = SupportMeasures::new(occ, config);
        let (_, t_mni) = timed(|| m.mni());
        let (_, t_mi) = timed(|| m.mi());
        let (_, t_mvc) = timed(|| m.mvc_with(MvcAlgorithm::Exact));
        let (_, t_mvc_greedy) = timed(|| m.mvc_with(MvcAlgorithm::GreedyMatching));
        let (_, t_mis) = timed(|| m.mis());
        let (_, t_mies) = timed(|| m.mies());
        let (_, t_lp) = timed(|| m.relaxed_mvc());
        table.add_row(vec![
            n.to_string(),
            format_duration(t_mni),
            format_duration(t_mi),
            format_duration(t_mvc),
            format_duration(t_mvc_greedy),
            format_duration(t_mis),
            format_duration(t_mies),
            format_duration(t_lp),
        ]);
    }
    table.print();
    println!("note: MIS builds the quadratic overlap graph, so it dominates at large occurrence counts.\n");
}

/// E5: end-to-end mining under different measures and thresholds.
fn e5_mining(quick: bool) {
    let dataset = ffsm_graph::datasets::chemical_like(if quick { 30 } else { 80 }, 7);
    let thresholds = if quick { vec![8.0, 16.0] } else { vec![4.0, 8.0, 16.0, 32.0] };
    let measures = [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc, MeasureKind::Mis];
    let mut table = Table::new(
        &format!("E5 — frequent patterns mined from `{}` ({})", dataset.name, dataset.description),
        &["tau", "measure", "#frequent", "max edges", "evaluated", "pruned", "time"],
    );
    // `MeasureKind: Eq + Hash` lets the report key its summary directly by measure.
    let mut total_frequent: std::collections::HashMap<MeasureKind, usize> =
        std::collections::HashMap::new();
    for &tau in &thresholds {
        for &measure in &measures {
            let session = MiningSession::on(&dataset.graph)
                .measure(measure)
                .min_support(tau)
                .max_edges(if quick { 3 } else { 4 });
            let (result, elapsed) = timed(|| session.run().expect("valid session"));
            *total_frequent.entry(measure).or_insert(0) += result.len();
            table.add_row(vec![
                fmt_value(tau),
                measure.name(),
                result.len().to_string(),
                result.max_edges().to_string(),
                result.stats.candidates_evaluated.to_string(),
                result.stats.candidates_pruned.to_string(),
                format_duration(elapsed),
            ]);
        }
    }
    table.print();
    let summary: Vec<String> = measures
        .iter()
        .map(|m| format!("{m}: {}", total_frequent.get(m).copied().unwrap_or(0)))
        .collect();
    println!("total frequent patterns across thresholds — {}", summary.join(", "));
    println!("expected shape: at a fixed tau, #frequent(MNI) >= #frequent(MI) >= #frequent(MVC) >= #frequent(MIS).\n");
}

/// E6: anti-monotonicity along random extension chains.
fn e6_anti_monotonicity(quick: bool) {
    let chains = if quick { 6 } else { 20 };
    let kinds = [
        MeasureKind::Mni,
        MeasureKind::Mi,
        MeasureKind::Mvc,
        MeasureKind::Mis,
        MeasureKind::Mies,
        MeasureKind::RelaxedMvc,
    ];
    let mut table = Table::new(
        "E6 — anti-monotonicity along pattern-extension chains (violations per measure)",
        &["measure", "chains checked", "pairs checked", "violations"],
    );
    let graph = generators::community_graph(4, 20, 0.3, 0.02, 4, 11);
    let mut pairs = vec![0usize; kinds.len()];
    let mut violations = vec![0usize; kinds.len()];
    let mut chains_used = 0usize;
    for seed in 0..chains as u64 {
        let chain = workloads::extension_chain(&graph, 4, seed * 13 + 3);
        if chain.len() < 2 {
            continue;
        }
        chains_used += 1;
        let values: Vec<Vec<f64>> = chain
            .iter()
            .map(|p| {
                let m = measures_for(p, &graph, 100_000);
                kinds.iter().map(|&k| m.compute(k)).collect()
            })
            .collect();
        for w in values.windows(2) {
            for (ki, _) in kinds.iter().enumerate() {
                pairs[ki] += 1;
                if w[1][ki] > w[0][ki] + 1e-6 {
                    violations[ki] += 1;
                }
            }
        }
    }
    for (ki, kind) in kinds.iter().enumerate() {
        table.add_row(vec![
            kind.name(),
            chains_used.to_string(),
            pairs[ki].to_string(),
            violations[ki].to_string(),
        ]);
    }
    table.print();
    println!("expected shape: 0 violations for every anti-monotonic measure.\n");
}

/// E7: MI strategy ablation and MVC approximation quality / LP integrality gap.
fn e7_ablation(quick: bool) {
    let suite =
        if quick { workloads::small_dataset_suite(21) } else { workloads::dataset_suite(21) };
    let mut mi_table = Table::new(
        "E7a — MI strategy ablation (value per coarse-grained subset strategy)",
        &[
            "dataset",
            "pattern",
            "MNI (Singletons)",
            "MI Orbits",
            "MI LabelClasses",
            "MNI-2 (ConnectedK)",
        ],
    );
    let mut approx_table = Table::new(
        "E7b — MVC approximation quality and LP integrality gap",
        &[
            "dataset",
            "pattern",
            "MVC exact",
            "MVC greedy-matching",
            "MVC greedy-degree",
            "nuMVC (LP)",
            "MIES",
        ],
    );
    for dataset in &suite {
        for np in workloads::pattern_suite().into_iter().take(6) {
            let occ = workloads::enumerate(&np.pattern, &dataset.graph, 50_000);
            if occ.num_occurrences() == 0 {
                continue;
            }
            let m = SupportMeasures::new(occ, MeasureConfig::default());
            mi_table.add_row(vec![
                dataset.name.clone(),
                np.name.clone(),
                m.mi_with(MiStrategy::Singletons).to_string(),
                m.mi_with(MiStrategy::AutomorphismOrbits).to_string(),
                m.mi_with(MiStrategy::LabelClasses).to_string(),
                m.mi_with(MiStrategy::ConnectedK(2)).to_string(),
            ]);
            approx_table.add_row(vec![
                dataset.name.clone(),
                np.name.clone(),
                m.mvc_with(MvcAlgorithm::Exact).value.to_string(),
                m.mvc_with(MvcAlgorithm::GreedyMatching).value.to_string(),
                m.mvc_with(MvcAlgorithm::GreedyDegree).value.to_string(),
                fmt_value(m.relaxed_mvc()),
                m.mies().value.to_string(),
            ]);
        }
    }
    mi_table.print();
    approx_table.print();
}

/// E8: overlap notions — overlap-graph density and MIS under each notion.
fn e8_overlap(quick: bool) {
    let mut table = Table::new(
        "E8 — simple vs harmful vs structural overlap (Figures 9, 10 + random workloads)",
        &[
            "workload",
            "occ",
            "edges simple",
            "edges harmful",
            "edges structural",
            "MIS simple",
            "MIS harmful",
            "MIS structural",
        ],
    );
    let mut workload_list: Vec<(String, LabeledGraph, Pattern)> = vec![
        ("figure9".into(), figures::figure9().graph, figures::figure9().pattern),
        ("figure10".into(), figures::figure10().graph, figures::figure10().pattern),
        ("figure2".into(), figures::figure2().graph, figures::figure2().pattern),
    ];
    let extra = if quick { 2 } else { 6 };
    for seed in 0..extra as u64 {
        let graph = generators::gnm_random(60, 140, 2, seed + 100);
        if let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed + 5) {
            workload_list.push((format!("gnm-seed{seed}"), graph, pattern));
        }
    }
    for (name, graph, pattern) in workload_list {
        let occ = workloads::enumerate(&pattern, &graph, 5_000);
        if occ.num_occurrences() == 0 {
            continue;
        }
        let analysis = OverlapAnalysis::new(&occ);
        let budget = SearchBudget::default();
        table.add_row(vec![
            name,
            occ.num_occurrences().to_string(),
            analysis.overlap_edge_count(OverlapKind::Simple).to_string(),
            analysis.overlap_edge_count(OverlapKind::Harmful).to_string(),
            analysis.overlap_edge_count(OverlapKind::Structural).to_string(),
            analysis.mis_under(OverlapKind::Simple, budget).to_string(),
            analysis.mis_under(OverlapKind::Harmful, budget).to_string(),
            analysis.mis_under(OverlapKind::Structural, budget).to_string(),
        ]);
    }
    table.print();
    println!("expected shape: weaker overlap notions give sparser overlap graphs and MIS values >= the simple-overlap MIS.\n");
}

/// E9: occurrence vs instance hypergraph sizes (automorphism effect).
fn e9_hypergraphs() {
    let mut table = Table::new(
        "E9 — occurrence vs instance hypergraphs (Figures 3, 5, 7): automorphisms collapse edges",
        &[
            "workload",
            "pattern automorphisms",
            "occurrences",
            "instances",
            "HO edges",
            "HI edges",
            "images",
        ],
    );
    for example in figures::all_figures() {
        let occ = workloads::enumerate(&example.pattern, &example.graph, 100_000);
        let autos = ffsm_graph::automorphism::automorphism_count(&example.pattern);
        table.add_row(vec![
            example.name.to_string(),
            autos.to_string(),
            occ.num_occurrences().to_string(),
            occ.num_instances().to_string(),
            occ.occurrence_hypergraph().num_edges().to_string(),
            occ.instance_hypergraph().num_edges().to_string(),
            occ.num_images().to_string(),
        ]);
    }
    table.print();
    println!("expected shape: occurrences = automorphisms x instances whenever instances do not share automorphic images.\n");
}

/// E10: additiveness — per-component decomposition of MVC / MIES / νMVC vs the direct
/// whole-hypergraph solve, sequentially and in parallel.
fn e10_decomposition(quick: bool) {
    use ffsm_core::decompose::{
        mies_by_components, mvc_by_components, relaxed_mvc_by_components, DecompositionConfig,
    };
    use ffsm_core::HypergraphBasis;

    let copies_list: Vec<usize> = if quick { vec![4, 16] } else { vec![4, 16, 64, 128] };
    let mut table = Table::new(
        "E10 — additive (per-component) evaluation vs direct evaluation",
        &[
            "components",
            "occ",
            "MVC direct",
            "MVC decomposed",
            "t direct",
            "t decomposed",
            "t parallel",
            "MIES equal",
            "nuMVC equal",
        ],
    );
    for &copies in &copies_list {
        let block = generators::star_overlap(3, 4);
        let graph = generators::replicated(&block, copies, false);
        let pattern = ffsm_graph::patterns::single_edge(ffsm_graph::Label(0), ffsm_graph::Label(1));
        let occ = workloads::enumerate(&pattern, &graph, 1_000_000);
        let n = occ.num_occurrences();
        let h = occ.hypergraph(HypergraphBasis::Occurrence);
        let m = SupportMeasures::new(occ, MeasureConfig::default());
        let (direct, t_direct) = timed(|| m.mvc_with(MvcAlgorithm::Exact));
        let seq = DecompositionConfig { parallel: false, ..Default::default() };
        let par = DecompositionConfig { parallel: true, ..Default::default() };
        let (decomposed, t_dec) = timed(|| mvc_by_components(&h, MvcAlgorithm::Exact, seq));
        let (_, t_par) = timed(|| mvc_by_components(&h, MvcAlgorithm::Exact, par));
        let mies_direct = m.mies().value as f64;
        let mies_dec = mies_by_components(&h, seq).value;
        let relaxed_direct = m.relaxed_mvc();
        let relaxed_dec = relaxed_mvc_by_components(&h, seq).value;
        table.add_row(vec![
            decomposed.num_components.to_string(),
            n.to_string(),
            direct.value.to_string(),
            fmt_value(decomposed.value),
            format_duration(t_direct),
            format_duration(t_dec),
            format_duration(t_par),
            ((mies_direct - mies_dec).abs() < 1e-9).to_string(),
            ((relaxed_direct - relaxed_dec).abs() < 1e-6).to_string(),
        ]);
    }
    table.print();
    println!("expected shape: identical values, decomposed/parallel times growing much slower with the number of components.\n");
}

/// E11: the full overlap-notion matrix — census of overlapping pairs and MIS/MCP under
/// simple, harmful, structural and edge overlap.
fn e11_overlap_variants(quick: bool) {
    let mut table = Table::new(
        "E11 — overlap-notion matrix: pair census and MIS / MCP under each notion",
        &[
            "workload",
            "occ",
            "pairs simple",
            "pairs harmful",
            "pairs structural",
            "pairs edge",
            "MIS simple",
            "MIS harmful",
            "MIS structural",
            "MIS edge",
            "MCP simple",
        ],
    );
    let mut workload_list: Vec<(String, LabeledGraph, Pattern)> = vec![
        ("figure9".into(), figures::figure9().graph, figures::figure9().pattern),
        ("figure10".into(), figures::figure10().graph, figures::figure10().pattern),
        ("figure6".into(), figures::figure6().graph, figures::figure6().pattern),
    ];
    let extra = if quick { 2 } else { 5 };
    for seed in 0..extra as u64 {
        let graph = generators::power_law_cluster(70, 2, 0.6, 2, seed + 40);
        if let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed + 9) {
            workload_list.push((format!("plc-seed{seed}"), graph, pattern));
        }
    }
    for (name, graph, pattern) in workload_list {
        let occ = workloads::enumerate(&pattern, &graph, 3_000);
        if occ.num_occurrences() == 0 {
            continue;
        }
        let analysis = OverlapAnalysis::new(&occ);
        let census = analysis.overlap_census();
        let budget = SearchBudget::default();
        table.add_row(vec![
            name,
            census.num_occurrences.to_string(),
            census.simple.to_string(),
            census.harmful.to_string(),
            census.structural.to_string(),
            census.edge.to_string(),
            analysis.mis_under(OverlapKind::Simple, budget).to_string(),
            analysis.mis_under(OverlapKind::Harmful, budget).to_string(),
            analysis.mis_under(OverlapKind::Structural, budget).to_string(),
            analysis.mis_under(OverlapKind::Edge, budget).to_string(),
            analysis.mcp_under(OverlapKind::Simple, budget).to_string(),
        ]);
    }
    table.print();
    println!("expected shape: harmful/structural/edge pair counts <= simple pair counts, and the corresponding MIS values >= MIS(simple); MCP(simple) >= MIS(simple).\n");
}

/// E12: kernelization / presolve effect — hypergraph vertex-cover reduction rules and
/// covering-LP presolve, on overlap-heavy workloads.
fn e12_reduction(quick: bool) {
    use ffsm_core::HypergraphBasis;
    use ffsm_hypergraph::reduction::{reduce_for_vertex_cover, reduced_exact_vertex_cover};
    use ffsm_hypergraph::vertex_cover::exact_vertex_cover;
    use ffsm_lp::{covering_lp, presolve_covering};

    let mut table = Table::new(
        "E12 — reduction rules before exact MVC and LP presolve before nuMVC",
        &[
            "workload",
            "edges",
            "edges after reduction",
            "forced",
            "MVC direct",
            "MVC reduced",
            "t direct",
            "t reduced",
            "LP rows after presolve",
            "nuMVC equal",
        ],
    );
    let sizes: Vec<usize> = if quick { vec![64, 256] } else { vec![64, 256, 1024] };
    for &target in &sizes {
        let (graph, pattern) = workloads::star_overlap_workload(target);
        let occ = workloads::enumerate(&pattern, &graph, 2_000_000);
        let h = occ.hypergraph(HypergraphBasis::Occurrence);
        let budget = SearchBudget::default();
        let (direct, t_direct) = timed(|| exact_vertex_cover(&h, budget));
        let reduced_instance = reduce_for_vertex_cover(&h);
        let (reduced, t_reduced) = timed(|| reduced_exact_vertex_cover(&h, budget));
        // LP presolve comparison.
        let sets: Vec<Vec<usize>> = h.edges().map(|(_, e)| e.to_vec()).collect();
        let direct_lp =
            covering_lp(h.num_vertices(), &sets).solve().map(|s| s.objective).unwrap_or(f64::NAN);
        let presolved = presolve_covering(h.num_vertices(), &sets);
        let presolved_lp =
            presolved.solve(h.num_vertices()).map(|s| s.objective).unwrap_or(f64::NAN);
        table.add_row(vec![
            format!("star-overlap({target})"),
            h.num_edges().to_string(),
            reduced_instance.hypergraph.num_edges().to_string(),
            reduced_instance.forced.len().to_string(),
            direct.value.to_string(),
            reduced.value.to_string(),
            format_duration(t_direct),
            format_duration(t_reduced),
            presolved.rows.len().to_string(),
            ((direct_lp - presolved_lp).abs() < 1e-6).to_string(),
        ]);
    }
    table.print();
    println!("expected shape: identical optima with far fewer edges/rows after reduction; the reduced exact solve is never slower on overlap-heavy inputs.\n");
}

/// E13: MCP in the value spectrum — where the clique-partition measure falls relative
/// to MIS and MVC across the dataset suite.
fn e13_mcp_spectrum(quick: bool) {
    let suite =
        if quick { workloads::small_dataset_suite(77) } else { workloads::dataset_suite(77) };
    let mut table = Table::new(
        "E13 — MCP relative to MIS / MVC / MI / MNI",
        &["dataset", "pattern", "occ", "MIS", "MCP", "MVC", "MI", "MNI", "MIS<=MCP"],
    );
    for dataset in &suite {
        for np in workloads::pattern_suite().into_iter().take(if quick { 4 } else { 6 }) {
            // A few thousand occurrences are plenty to place MCP on the spectrum; the
            // exact clique-partition search is exponential in the overlap-graph size.
            let occ = workloads::enumerate(&np.pattern, &dataset.graph, 2_000);
            if occ.num_occurrences() == 0 {
                continue;
            }
            let m = SupportMeasures::new(occ, MeasureConfig::default());
            let mis = m.mis().value;
            let mcp = m.mcp().value;
            table.add_row(vec![
                dataset.name.clone(),
                np.name.clone(),
                m.occurrence_count().to_string(),
                mis.to_string(),
                mcp.to_string(),
                m.mvc().value.to_string(),
                m.mi().to_string(),
                m.mni().to_string(),
                (mis <= mcp).to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "expected shape: σMIS <= σMCP on every row; MCP usually sits between MIS and MVC/MI.\n"
    );
}

/// E14: search schemes — the sequential miner, the level-parallel miner and top-k
/// mining on the same workload, plus the maximal / closed condensations.
fn e14_search_schemes(quick: bool) {
    use ffsm_miner::postprocess::{closed_patterns, maximal_patterns};

    let dataset = ffsm_graph::datasets::chemical_like(if quick { 25 } else { 60 }, 19);
    let tau = if quick { 8.0 } else { 12.0 };
    let max_edges = 3;
    let mut table = Table::new(
        &format!("E14 — search schemes on `{}` (tau = {tau})", dataset.name),
        &["scheme", "#patterns", "#maximal", "#closed", "evaluated", "time"],
    );

    let (sequential, t_seq) = timed(|| {
        MiningSession::on(&dataset.graph)
            .measure(MeasureKind::Mni)
            .min_support(tau)
            .max_edges(max_edges)
            .run()
            .expect("valid session")
    });
    table.add_row(vec![
        "sequential".into(),
        sequential.len().to_string(),
        maximal_patterns(&sequential).len().to_string(),
        closed_patterns(&sequential).len().to_string(),
        sequential.stats.candidates_evaluated.to_string(),
        format_duration(t_seq),
    ]);

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (parallel, t_par) = timed(|| {
        MiningSession::on(&dataset.graph)
            .measure(MeasureKind::Mni)
            .min_support(tau)
            .max_edges(max_edges)
            .threads(threads)
            .run()
            .expect("valid session")
    });
    table.add_row(vec![
        format!("parallel x{threads}"),
        parallel.len().to_string(),
        maximal_patterns(&parallel).len().to_string(),
        closed_patterns(&parallel).len().to_string(),
        parallel.stats.candidates_evaluated.to_string(),
        format_duration(t_par),
    ]);

    let k = 10;
    let (topk, t_topk) = timed(|| {
        MiningSession::on(&dataset.graph)
            .measure(MeasureKind::Mni)
            .min_support(2.0)
            .max_edges(max_edges)
            .top_k(k)
            .run()
            .expect("valid session")
    });
    table.add_row(vec![
        format!("top-{k}"),
        topk.patterns.len().to_string(),
        "-".into(),
        "-".into(),
        topk.stats.candidates_evaluated.to_string(),
        format_duration(t_topk),
    ]);
    table.print();
    println!("expected shape: sequential and parallel report the same pattern set; top-k evaluates no more candidates than an exhaustive run at its floor threshold.\n");
}
