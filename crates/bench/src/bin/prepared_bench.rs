//! `prepared_bench` — the `prepared_serving` workload behind `BENCH_prepared.json`.
//!
//! Measures the prepare-once/serve-many split of [`PreparedGraph`]: `N` mining
//! sessions answered over **one** shared `PreparedGraph` (the index and label
//! statistics built once, amortised across the batch) versus `N` **cold**
//! `MiningSession::on(&graph)` calls (each clones the graph and rebuilds every
//! per-graph artifact — exactly what a naive serving loop would pay per request).
//! Both paths run the identical query mix, and every prepared result is
//! cross-checked against its cold twin, so the bench doubles as an integration
//! test of the sharing.
//!
//! Usage: `prepared_bench [--sessions N] [--vertices N] [--out PATH]`
//! (defaults: 12 sessions, 20000 vertices, `BENCH_prepared.json` in the working
//! directory).
//!
//! The JSON report is a flat list of entries (`workload`, `sessions`, `patterns`,
//! `cold_us`, `prepared_us`, `index_builds`, `speedup`) consumed by the CI
//! artifact upload; future PRs extend the trajectory rather than reformatting it.

use ffsm_bench::report::{json_string, Table};
use ffsm_bench::{flag_value, format_duration, timed};
use ffsm_core::MeasureKind;
use ffsm_graph::{generators, LabeledGraph};
use ffsm_miner::{MiningResult, MiningSession, PreparedGraph};
use std::time::Duration;

struct Entry {
    workload: &'static str,
    sessions: usize,
    patterns: usize,
    cold: Duration,
    prepared: Duration,
    index_builds: usize,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.prepared.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"workload\": {}, \"sessions\": {}, \"patterns\": {}, \"cold_us\": {}, \
             \"prepared_us\": {}, \"index_builds\": {}, \"speedup\": {:.2}}}",
            json_string(self.workload),
            self.sessions,
            self.patterns,
            self.cold.as_micros(),
            self.prepared.as_micros(),
            self.index_builds,
            self.speedup()
        )
    }
}

/// The per-session query: a cheap threshold run (seeds only) — the shape of an
/// interactive "what is frequent here?" request, where per-graph setup dominates.
fn query(session: MiningSession) -> MiningResult {
    session.measure(MeasureKind::Mni).min_support(8.0).max_edges(1).run().expect("valid session")
}

fn measure(workload: &'static str, graph: LabeledGraph, sessions: usize) -> Entry {
    // Cold path: every request prepares its own graph from scratch.
    let (cold_results, cold) =
        timed(|| (0..sessions).map(|_| query(MiningSession::on(&graph))).collect::<Vec<_>>());
    // Serving path: prepare once, answer N times over the shared handle.
    let (outcome, prepared_time) = timed(|| {
        let prepared = PreparedGraph::new(graph);
        let results =
            (0..sessions).map(|_| query(MiningSession::over(&prepared))).collect::<Vec<_>>();
        (results, prepared.index_build_count())
    });
    let (prepared_results, index_builds) = outcome;
    assert_eq!(index_builds, 1, "shared PreparedGraph must build its index exactly once");
    // Cross-check: both paths answer every request identically.
    for (c, p) in cold_results.iter().zip(&prepared_results) {
        assert_eq!(c.len(), p.len(), "prepared result diverged from cold ({workload})");
        for (a, b) in c.patterns.iter().zip(&p.patterns) {
            assert_eq!(a.support.to_bits(), b.support.to_bits(), "support bits ({workload})");
        }
    }
    Entry {
        workload,
        sessions,
        patterns: prepared_results.first().map(|r| r.len()).unwrap_or(0),
        cold,
        prepared: prepared_time,
        index_builds,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sessions: usize = flag_value(&args, "--sessions")
        .map(|v| v.parse().expect("--sessions expects a number"))
        .unwrap_or(12);
    let vertices: usize = flag_value(&args, "--vertices")
        .map(|v| v.parse().expect("--vertices expects a number"))
        .unwrap_or(20_000);
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_prepared.json").to_string();

    let mut entries: Vec<Entry> = Vec::new();
    let mut table = Table::new(
        "prepared_serving: N cold sessions vs N sessions over one PreparedGraph",
        &["workload", "sessions", "patterns", "cold", "prepared", "idx builds", "speedup"],
    );
    for (workload, graph) in [
        // Very sparse, label-rich: per-session artifact cost (graph clone + index
        // over every vertex) dwarfs the query, which only touches the few edges.
        ("sparse_random", generators::gnm_random(vertices, vertices / 8, 16, 7)),
        // Denser community structure: heavier queries, setup still significant.
        (
            "community",
            generators::community_graph(20, vertices.min(8_000) / 20, 0.02, 0.0005, 8, 11),
        ),
    ] {
        entries.push(measure(workload, graph, sessions));
    }
    for e in &entries {
        table.add_row(vec![
            e.workload.to_string(),
            e.sessions.to_string(),
            e.patterns.to_string(),
            format_duration(e.cold),
            format_duration(e.prepared),
            e.index_builds.to_string(),
            format!("{:.2}x", e.speedup()),
        ]);
    }
    table.print();

    let body: Vec<String> = entries.iter().map(|e| format!("    {}", e.to_json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"prepared_serving\",\n  \"workloads\": [\"sparse_random\", \
         \"community\"],\n  \"entries\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write perf report");
    println!("wrote {out_path} ({} entries)", entries.len());

    // Acceptance gate: index reuse must make the serving path measurably faster
    // than the cold path on the sparse workload (where setup dominates).
    let sparse = entries.iter().find(|e| e.workload == "sparse_random").expect("sparse ran");
    assert!(
        sparse.speedup() >= 1.2,
        "PreparedGraph reuse only {:.2}x over cold sessions ({:?} vs {:?}) — index sharing \
         regressed",
        sparse.speedup(),
        sparse.prepared,
        sparse.cold
    );
}
