//! Certified support intervals and the certificates that justify them.

/// A closed interval `[lo, hi]` guaranteed to contain a pattern's exact support
/// under the session's measure.
///
/// Soundness is the defining property: whatever cheap argument produced the
/// interval, the true support `s` satisfies `lo ≤ s ≤ hi`.  A bounds-first
/// session decides a pattern without exact evaluation only when the interval
/// clears the threshold on one side (`lo ≥ τ` or `hi < τ`), so the decision
/// agrees with the decision exact mining would have made.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupportInterval {
    /// Certified lower bound on the support.
    pub lo: f64,
    /// Certified upper bound on the support.
    pub hi: f64,
}

impl SupportInterval {
    /// The interval `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> SupportInterval {
        SupportInterval { lo, hi }
    }

    /// The degenerate interval `[value, value]` of an exactly known support.
    pub fn point(value: f64) -> SupportInterval {
        SupportInterval { lo: value, hi: value }
    }

    /// `true` when `value` lies inside the interval (within `tol` slack on both
    /// sides, for supports that are themselves LP optima).
    pub fn contains(&self, value: f64, tol: f64) -> bool {
        self.lo - tol <= value && value <= self.hi + tol
    }

    /// Width `hi − lo`; 0 for a point.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// `true` when the interval pins the support exactly.
    pub fn is_point(&self) -> bool {
        self.lo >= self.hi
    }

    /// What the interval decides against threshold `tau`:
    /// `Some(true)` = certainly frequent (`lo ≥ τ`), `Some(false)` = certainly
    /// infrequent (`hi < τ`), `None` = the threshold falls inside the interval.
    pub fn decides(&self, tau: f64) -> Option<bool> {
        if self.lo >= tau {
            Some(true)
        } else if self.hi < tau {
            Some(false)
        } else {
            None
        }
    }
}

/// The cheap argument that produced a [`SupportInterval`].
///
/// Stable machine names (see [`Certificate::name`]) are part of the serve
/// protocol; they appear in `certificate` fields of pattern and undecided
/// frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certificate {
    /// Anti-monotonicity: the support of an extension never exceeds the support
    /// (upper bound) established for its parent pattern.
    ParentSupport,
    /// Cardinality bound from graph statistics: every MNI image of a pattern
    /// vertex is a data vertex with the same label and at least the pattern
    /// degree, so the smallest such candidate set bounds every chain measure.
    IndexDegree,
    /// The paper's Section 4.4 containment chain
    /// `σMIS = σMIES ≤ νMIES = νMVC ≤ σMVC ≤ σMI ≤ σMNI`: a cheap measure on
    /// one end of the chain bounds the expensive one being mined.
    ContainmentChain,
    /// A greedy independent edge set of the occurrence hypergraph — a feasible
    /// packing, hence a lower bound for every measure at or above σMIES in the
    /// chain.
    GreedyPacking,
    /// The fractional covering/packing LP relaxation (νMVC = νMIES), bounded by
    /// weak duality from the dual feasible solution.  `certified` is `true`
    /// when [`ffsm_lp::DualityReport::certifies_optimality`] stamped the solve:
    /// zero duality gap and complementary slackness within tolerance.
    LpRelaxation {
        /// Strong-duality certificate for the LP optimum itself.
        certified: bool,
    },
    /// No shortcut applied: the support was computed exactly and the interval
    /// is the point `[s, s]`.
    Exact,
}

impl Certificate {
    /// Stable machine name (protocol frames, JSON reports).
    pub fn name(&self) -> &'static str {
        match self {
            Certificate::ParentSupport => "parent-support",
            Certificate::IndexDegree => "index-degree",
            Certificate::ContainmentChain => "containment-chain",
            Certificate::GreedyPacking => "greedy-packing",
            Certificate::LpRelaxation { certified: true } => "lp-relaxation-certified",
            Certificate::LpRelaxation { certified: false } => "lp-relaxation",
            Certificate::Exact => "exact",
        }
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_against_threshold() {
        let iv = SupportInterval::new(2.0, 5.0);
        assert_eq!(iv.decides(2.0), Some(true));
        assert_eq!(iv.decides(6.0), Some(false));
        assert_eq!(iv.decides(4.0), None);
        assert!(iv.contains(3.0, 0.0));
        assert!(!iv.contains(5.5, 1e-9));
        assert!((iv.width() - 3.0).abs() < 1e-12);
        assert!(SupportInterval::point(4.0).is_point());
        assert_eq!(SupportInterval::point(4.0).decides(4.0), Some(true));
    }

    #[test]
    fn certificate_names_are_distinct_and_stable() {
        let all = [
            Certificate::ParentSupport,
            Certificate::IndexDegree,
            Certificate::ContainmentChain,
            Certificate::GreedyPacking,
            Certificate::LpRelaxation { certified: true },
            Certificate::LpRelaxation { certified: false },
            Certificate::Exact,
        ];
        let names: std::collections::BTreeSet<&str> = all.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), all.len());
        assert_eq!(Certificate::Exact.to_string(), "exact");
    }
}
