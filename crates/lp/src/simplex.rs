//! Two-phase primal simplex over a dense tableau.
//!
//! The implementation favours robustness over raw speed: Bland's anti-cycling rule is
//! used for both entering and leaving pivot selection (after an initial Dantzig
//! phase), every pivot is performed with full row elimination, and a configurable
//! iteration budget guards against pathological inputs, surfacing as a typed
//! [`LpError::IterationLimit`].  The LPs solved in this project (covering / packing relaxations
//! of support measures) have at most a few thousand rows and columns, for which this is
//! more than sufficient.

use crate::standard::StandardForm;
use crate::{LpError, EPS};

/// Options controlling the simplex solver.
#[derive(Debug, Clone, Copy)]
pub struct SimplexOptions {
    /// Hard cap on the number of pivots across both phases.
    pub max_pivots: usize,
    /// Number of initial pivots that use Dantzig's rule (most-negative reduced cost)
    /// before switching to Bland's rule.  Dantzig is usually much faster; Bland
    /// guarantees termination.
    pub dantzig_pivots: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions { max_pivots: 200_000, dantzig_pivots: 20_000 }
    }
}

/// Final status of a simplex run (used internally; the public API surfaces errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The problem is infeasible.
    Infeasible,
    /// The problem is unbounded.
    Unbounded,
}

/// Raw solution of a standard-form LP: values for *all* variables (structural and
/// auxiliary) plus pivot count.
#[derive(Debug, Clone)]
pub(crate) struct RawSolution {
    pub values: Vec<f64>,
    pub pivots: usize,
}

struct Tableau {
    /// rows × (num_vars + 1); the last column is the right-hand side.
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length num_vars + 1; last entry is -objective.
    obj: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    num_vars: usize,
    pivots: usize,
}

impl Tableau {
    fn new(sf: &StandardForm) -> Tableau {
        let m = sf.num_rows();
        let num_vars = sf.num_vars;
        let mut rows = Vec::with_capacity(m);
        for i in 0..m {
            let mut row = Vec::with_capacity(num_vars + 1);
            row.extend_from_slice(&sf.a[i]);
            row.push(sf.b[i]);
            rows.push(row);
        }
        Tableau {
            rows,
            obj: vec![0.0; num_vars + 1],
            basis: sf.initial_basis.clone(),
            num_vars,
            pivots: 0,
        }
    }

    /// Install an objective `costs` (length num_vars) and price it out with respect to
    /// the current basis so that reduced costs of basic variables are zero.
    fn set_objective(&mut self, costs: &[f64]) {
        self.obj = vec![0.0; self.num_vars + 1];
        self.obj[..self.num_vars].copy_from_slice(costs);
        // Price out basic variables: obj -= cost(basic) * row
        for (i, &b) in self.basis.iter().enumerate() {
            let cost = costs[b];
            if cost.abs() > EPS {
                for (o, r) in self.obj.iter_mut().zip(self.rows[i].iter()) {
                    *o -= cost * r;
                }
            }
        }
    }

    /// Current objective value (for the minimisation orientation of the tableau).
    fn objective_value(&self) -> f64 {
        -self.obj[self.num_vars]
    }

    /// Choose the entering column: Dantzig (most negative reduced cost) for the first
    /// `dantzig_pivots`, then Bland (lowest index with negative reduced cost).
    fn choose_entering(
        &self,
        allow: &dyn Fn(usize) -> bool,
        opts: &SimplexOptions,
    ) -> Option<usize> {
        if self.pivots < opts.dantzig_pivots {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.num_vars {
                if !allow(j) {
                    continue;
                }
                let rc = self.obj[j];
                if rc < -EPS {
                    match best {
                        Some((_, b)) if rc >= b => {}
                        _ => best = Some((j, rc)),
                    }
                }
            }
            best.map(|(j, _)| j)
        } else {
            (0..self.num_vars).find(|&j| allow(j) && self.obj[j] < -EPS)
        }
    }

    /// Ratio test: choose the leaving row for entering column `col`.
    /// Returns `None` if the column is unbounded.
    ///
    /// In the initial Dantzig phase (`bland == false`) near-tied ratios are broken in
    /// favour of the largest pivot element, which keeps the tableau numerically tame
    /// on the massively degenerate covering/packing LPs this solver exists for
    /// (index-based tie-breaking let rounding noise compound into garbage objectives).
    /// Once the pivot count crosses `dantzig_pivots` the caller switches to Bland mode
    /// (`bland == true`): ties are then broken by the *lowest basic-variable index*,
    /// which together with Bland's entering rule guarantees termination on degenerate
    /// LPs; the `max_pivots` budget remains the hard backstop and surfaces as
    /// [`LpError::IterationLimit`].
    ///
    /// Only entries above `pivot_tol` qualify as pivots: dividing a row by a
    /// near-epsilon element multiplies every entry by its reciprocal, and a handful of
    /// such pivots is enough to blow the tableau up into garbage reduced costs.  The
    /// caller retries with the raw feasibility epsilon before concluding a column is
    /// an unbounded ray.
    fn choose_leaving(&self, col: usize, pivot_tol: f64, bland: bool) -> Option<usize> {
        let rhs_col = self.num_vars;
        // (row, ratio, pivot element, basic-variable index)
        let mut best: Option<(usize, f64, f64, usize)> = None;
        for i in 0..self.rows.len() {
            let a = self.rows[i][col];
            if a > pivot_tol {
                let ratio = self.rows[i][rhs_col] / a;
                match best {
                    None => best = Some((i, ratio, a, self.basis[i])),
                    Some((_, br, ba, bb)) => {
                        let better_tie = if bland { self.basis[i] < bb } else { a > ba };
                        if ratio < br - EPS || (ratio < br + EPS && better_tie) {
                            best = Some((i, ratio, a, self.basis[i]));
                        }
                    }
                }
            }
        }
        best.map(|(i, _, _, _)| i)
    }

    /// Perform a pivot on (row, col).
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.rows[row][col];
        debug_assert!(pivot_val.abs() > EPS);
        let inv = 1.0 / pivot_val;
        for x in self.rows[row].iter_mut() {
            *x *= inv;
        }
        // snapshot pivot row to avoid borrow issues
        let pivot_row = self.rows[row].clone();
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor.abs() > EPS {
                for (x, p) in r.iter_mut().zip(pivot_row.iter()) {
                    *x -= factor * p;
                }
                r[col] = 0.0; // kill numerical dust
            }
        }
        let factor = self.obj[col];
        if factor.abs() > EPS {
            for (x, p) in self.obj.iter_mut().zip(pivot_row.iter()) {
                *x -= factor * p;
            }
            self.obj[col] = 0.0;
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Run the simplex loop until optimal / unbounded / iteration limit.
    fn optimize(
        &mut self,
        allow: &dyn Fn(usize) -> bool,
        opts: &SimplexOptions,
    ) -> Result<SolveStatus, LpError> {
        // Reduced costs accumulate rounding noise over long runs; a column whose
        // reduced cost is negative only at dust level (between -DUST and -EPS) and has
        // no usable pivot row is numerical debris, not an improving ray.  Such columns
        // are excluded for the rest of this optimize call instead of being reported as
        // an unbounded direction.
        const DUST: f64 = 1e-7;
        const PIVOT_TOL: f64 = 1e-7;
        let mut banned = vec![false; self.num_vars];
        loop {
            if self.pivots > opts.max_pivots {
                return Err(LpError::IterationLimit);
            }
            let usable = |j: usize| allow(j) && !banned[j];
            let Some(col) = self.choose_entering(&usable, opts) else {
                return Ok(SolveStatus::Optimal);
            };
            let bland = self.pivots >= opts.dantzig_pivots;
            match self.choose_leaving(col, PIVOT_TOL, bland) {
                Some(row) => self.pivot(row, col),
                None if self.obj[col] > -DUST => {
                    banned[col] = true;
                }
                // The column improves the objective for real but has no entry above
                // the preferred pivot tolerance.  Before declaring the LP unbounded,
                // fall back to the raw feasibility threshold: a tiny pivot is better
                // than a wrong verdict.
                None => match self.choose_leaving(col, EPS, bland) {
                    Some(row) => self.pivot(row, col),
                    None => return Ok(SolveStatus::Unbounded),
                },
            }
        }
    }

    /// Extract the value of every variable from the current basis.
    fn values(&self) -> Vec<f64> {
        let mut vals = vec![0.0; self.num_vars];
        let rhs_col = self.num_vars;
        for (i, &b) in self.basis.iter().enumerate() {
            vals[b] = self.rows[i][rhs_col].max(0.0);
        }
        vals
    }
}

/// Solve a standard-form LP with the two-phase simplex method.
pub(crate) fn solve_standard(
    sf: &StandardForm,
    opts: &SimplexOptions,
) -> Result<RawSolution, LpError> {
    let mut tab = Tableau::new(sf);
    let is_artificial = {
        let mut flags = vec![false; sf.num_vars];
        for &a in &sf.artificial {
            flags[a] = true;
        }
        flags
    };

    // ---- Phase 1: minimise the sum of artificial variables. ----
    if !sf.artificial.is_empty() {
        let mut phase1_costs = vec![0.0; sf.num_vars];
        for &a in &sf.artificial {
            phase1_costs[a] = 1.0;
        }
        tab.set_objective(&phase1_costs);
        let status = tab.optimize(&|_| true, opts)?;
        if status == SolveStatus::Unbounded {
            // Phase-1 objective is bounded below by zero; unbounded cannot happen.
            return Err(LpError::Infeasible);
        }
        if tab.objective_value() > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial variables that remain basic (at value 0) out of the
        // basis so that phase 2 never re-increases them.
        for i in 0..tab.basis.len() {
            if is_artificial[tab.basis[i]] {
                // Find a non-artificial column with a nonzero coefficient in this row.
                let col =
                    (0..sf.num_vars).find(|&j| !is_artificial[j] && tab.rows[i][j].abs() > EPS);
                if let Some(col) = col {
                    tab.pivot(i, col);
                }
                // If no such column exists the row is redundant; the artificial stays
                // basic at value zero, which is harmless as long as it is never allowed
                // to enter (guaranteed by the phase-2 `allow` filter below never letting
                // it *re-enter*; it is already basic and its value is 0).
            }
        }
    }

    // ---- Phase 2: minimise the real objective over non-artificial columns. ----
    tab.set_objective(&sf.c);
    let allow = |j: usize| !is_artificial[j];
    let status = tab.optimize(&allow, opts)?;
    match status {
        SolveStatus::Optimal => Ok(RawSolution { values: tab.values(), pivots: tab.pivots }),
        SolveStatus::Unbounded => Err(LpError::Unbounded),
        SolveStatus::Infeasible => Err(LpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use crate::problem::{ConstraintOp, Objective, Problem};

    fn solve(p: &Problem) -> crate::Solution {
        p.solve().expect("solvable")
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A degenerate LP known to cycle under naive Dantzig without anti-cycling.
        // (Beale's example.)
        let mut p = Problem::new(Objective::Minimize, 4);
        p.set_objective(0, -0.75);
        p.set_objective(1, 150.0);
        p.set_objective(2, -0.02);
        p.set_objective(3, 6.0);
        p.add_constraint(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(2, 1.0)], ConstraintOp::Le, 1.0);
        let sol = solve(&p);
        assert!((sol.objective - (-0.05)).abs() < 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice; max x.
        let mut p = Problem::new(Objective::Maximize, 2);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        let sol = solve(&p);
        assert!((sol.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn larger_random_covering_lp_consistency() {
        // Fractional covering optimum must always be <= integral greedy cover size and
        // >= (number of disjoint sets).  Deterministic pseudo-random instance.
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        let n_elem = 30;
        let mut sets = Vec::new();
        for _ in 0..40 {
            let len = 2 + next() % 4;
            let mut s: Vec<usize> = (0..len).map(|_| next() % n_elem).collect();
            s.sort_unstable();
            s.dedup();
            sets.push(s);
        }
        let cover = crate::covering_lp(n_elem, &sets).solve().unwrap();
        let pack = crate::packing_lp(sets.len(), &sets, n_elem).solve().unwrap();
        assert!((cover.objective - pack.objective).abs() < 1e-6);
        assert!(cover.objective > 0.0);
        assert!(cover.objective <= n_elem as f64 + 1e-9);
    }

    #[test]
    fn iteration_cap_surfaces_as_typed_error() {
        // A covering LP needs a handful of pivots; a one-pivot budget must not loop
        // or panic but return the typed iteration-limit error.
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3], vec![0, 2]];
        let mut p = crate::covering_lp(4, &sets);
        p.set_options(crate::SimplexOptions { max_pivots: 1, dantzig_pivots: 0 });
        assert!(matches!(p.solve(), Err(crate::LpError::IterationLimit)));
    }

    #[test]
    fn bland_mode_solves_degenerate_problems() {
        // Force Bland's entering *and* leaving rules from the very first pivot on
        // Beale's cycling example: the run must terminate at the true optimum well
        // inside the pivot budget instead of cycling.
        let mut p = Problem::new(Objective::Minimize, 4);
        p.set_objective(0, -0.75);
        p.set_objective(1, 150.0);
        p.set_objective(2, -0.02);
        p.set_objective(3, 6.0);
        p.add_constraint(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![(2, 1.0)], ConstraintOp::Le, 1.0);
        p.set_options(crate::SimplexOptions { max_pivots: 10_000, dantzig_pivots: 0 });
        let sol = solve(&p);
        assert!((sol.objective - (-0.05)).abs() < 1e-6, "got {}", sol.objective);
        assert!(sol.pivots < 1_000, "Bland mode took {} pivots", sol.pivots);
    }

    #[test]
    fn values_are_within_bounds() {
        let sets = vec![vec![0, 1, 2], vec![2, 3], vec![0, 3]];
        let sol = crate::covering_lp(4, &sets).solve().unwrap();
        for &v in &sol.values {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }
}
