//! Request side of the NDJSON-over-TCP wire protocol.
//!
//! A client sends one JSON object per line; the server answers each request
//! with a stream of event frames (see [`crate::events`]) terminated by exactly
//! one `done` frame, in request order per connection.  Requests are *flat*
//! objects — every value is a string, number, boolean or null — which keeps the
//! no-dependency parser here small and the protocol trivially generatable from
//! any language (`printf` is a compliant client).
//!
//! ## Operations
//!
//! | `op`        | fields                                                                   |
//! |-------------|--------------------------------------------------------------------------|
//! | `mine`      | `graph`, `tau`, [`measure`], [`max_edges`], [`top_k`], [`deadline_ms`],  |
//! |             | [`bounds`] (boolean: bounds-first certified intervals)                   |
//! | `update`    | `graph`, `updates` (`.gu`-format text, `t` lines separate batches)       |
//! | `partition` | `graph`, `shards`, [`halo`] (default 3), [`strategy`] (default           |
//! |             | `vertex-range`; also `label-aware`)                                      |
//! | `list`      | —                                                                        |
//! | `stat`      | [`graph`] (omitted: server-level statistics)                             |
//! | `metrics`   | — (scrape the server's metrics registry: one `metric` frame per metric)  |
//! | `shutdown`  | — (begin graceful drain)                                                 |
//!
//! Every request may carry a numeric `id`, echoed verbatim in the request's
//! `error` and `done` frames so clients can correlate.  Malformed requests are
//! typed [`FfsmError::Protocol`] errors — the connection survives them.

use ffsm_core::{FfsmError, MeasureKind};
use ffsm_graph::{io, GraphUpdate};
use ffsm_shard::{PartitionSpec, PartitionStrategy};

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, the wire format's only numeric type).
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
}

/// Parameters of one `mine` request.
#[derive(Debug, Clone)]
pub struct MineParams {
    /// Registered graph to mine.
    pub graph: String,
    /// Support threshold τ.
    pub tau: f64,
    /// Support measure (default MNI, like the CLI).
    pub measure: MeasureKind,
    /// Pattern-growth cap in edges (default 3, like the CLI).
    pub max_edges: usize,
    /// `Some(k)`: top-k mode with τ as the floor threshold.
    pub top_k: Option<usize>,
    /// Per-request wall-clock deadline; the server maps it onto the session's
    /// `CancelToken`.  `None` falls back to the server's default deadline.
    pub deadline_ms: Option<u64>,
    /// Bounds-first mode ([`ffsm_miner::MiningSession::bounds_first`]):
    /// `pattern` frames gain certified `support_lo`/`support_hi`/`certificate`
    /// fields, and an interrupted session emits one `undecided` frame per
    /// still-pending candidate.
    pub bounds: bool,
}

/// One decoded request operation.
#[derive(Debug, Clone)]
pub enum Request {
    /// Mine a registered graph's current epoch.
    Mine(MineParams),
    /// Apply update batches to a registered graph (one committed epoch each).
    Update {
        /// Registered graph to update.
        graph: String,
        /// Parsed batches, in application order.
        batches: Vec<Vec<GraphUpdate>>,
    },
    /// (Re)build a shard partition over a registered graph's current epoch.
    Partition {
        /// Registered graph to partition.
        graph: String,
        /// The validated partition geometry (shard count, halo depth, strategy).
        spec: PartitionSpec,
    },
    /// Enumerate the registered graphs.
    List,
    /// Statistics for one graph, or for the server when `graph` is `None`.
    Stat {
        /// The graph to describe, `None` for server-level statistics.
        graph: Option<String>,
    },
    /// Scrape the server's metrics registry: counters, gauges and latency
    /// histograms, one flat `metric` frame each.
    Metrics,
    /// Begin graceful drain: stop admissions, cancel in-flight sessions, flush.
    Shutdown,
}

/// A request together with its optional correlation id.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Client-chosen id echoed in the request's `error`/`done` frames.
    pub id: Option<u64>,
    /// The decoded operation.
    pub request: Request,
}

fn protocol_err(message: impl Into<String>) -> FfsmError {
    FfsmError::Protocol(message.into())
}

/// Parse one flat JSON object into `(key, value)` pairs in document order.
/// Nested objects and arrays are rejected — the protocol has no use for them
/// and refusing keeps the parser honest about what it accepts.
pub fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, FfsmError> {
    let mut chars = line.char_indices().peekable();
    let mut pairs = Vec::new();

    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        finish_line(&mut chars)?;
        return Ok(pairs);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = parse_value(&mut chars, line)?;
        pairs.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            Some((at, c)) => {
                return Err(protocol_err(format!("expected ',' or '}}' at byte {at}, got {c:?}")))
            }
            None => return Err(protocol_err("unterminated object")),
        }
    }
    finish_line(&mut chars)?;
    Ok(pairs)
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars) {
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut Chars, want: char) -> Result<(), FfsmError> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        Some((at, c)) => Err(protocol_err(format!("expected {want:?} at byte {at}, got {c:?}"))),
        None => Err(protocol_err(format!("expected {want:?}, got end of line"))),
    }
}

fn finish_line(chars: &mut Chars) -> Result<(), FfsmError> {
    skip_ws(chars);
    match chars.next() {
        None => Ok(()),
        Some((at, c)) => Err(protocol_err(format!("trailing content at byte {at}: {c:?}"))),
    }
}

fn parse_string(chars: &mut Chars) -> Result<String, FfsmError> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let digit = chars
                            .next()
                            .and_then(|(_, c)| c.to_digit(16))
                            .ok_or_else(|| protocol_err("bad \\u escape"))?;
                        code = code * 16 + digit;
                    }
                    // Surrogates are rejected rather than paired: the protocol's
                    // strings are graph names and `.gu`/`.lg` text, all ASCII.
                    let c = char::from_u32(code)
                        .ok_or_else(|| protocol_err("\\u escape is not a scalar value"))?;
                    out.push(c);
                }
                Some((at, c)) => {
                    return Err(protocol_err(format!("unknown escape \\{c} at byte {at}")))
                }
                None => return Err(protocol_err("unterminated string escape")),
            },
            Some((_, c)) if (c as u32) >= 0x20 => out.push(c),
            Some((at, _)) => {
                return Err(protocol_err(format!("raw control character in string at byte {at}")))
            }
            None => return Err(protocol_err("unterminated string")),
        }
    }
}

fn parse_value(chars: &mut Chars, line: &str) -> Result<JsonValue, FfsmError> {
    match chars.peek().copied() {
        Some((_, '"')) => Ok(JsonValue::String(parse_string(chars)?)),
        Some((_, '{')) | Some((_, '[')) => {
            Err(protocol_err("nested objects/arrays are not part of the protocol"))
        }
        Some((_, 't')) => keyword(chars, "true").map(|()| JsonValue::Bool(true)),
        Some((_, 'f')) => keyword(chars, "false").map(|()| JsonValue::Bool(false)),
        Some((_, 'n')) => keyword(chars, "null").map(|()| JsonValue::Null),
        Some((start, c)) if c == '-' || c.is_ascii_digit() => {
            let mut end = start;
            while let Some(&(at, c)) = chars.peek() {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    end = at + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let text = &line[start..end];
            text.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .map(JsonValue::Number)
                .ok_or_else(|| protocol_err(format!("bad number {text:?}")))
        }
        Some((at, c)) => Err(protocol_err(format!("unexpected value start {c:?} at byte {at}"))),
        None => Err(protocol_err("expected a value, got end of line")),
    }
}

fn keyword(chars: &mut Chars, word: &str) -> Result<(), FfsmError> {
    for want in word.chars() {
        match chars.next() {
            Some((_, c)) if c == want => {}
            _ => return Err(protocol_err(format!("bad literal (expected {word:?})"))),
        }
    }
    Ok(())
}

/// Typed accessors over the parsed pairs, with errors naming the field.
struct Fields {
    pairs: Vec<(String, JsonValue)>,
}

impl Fields {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn string(&self, key: &str) -> Result<Option<&str>, FfsmError> {
        match self.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(JsonValue::String(s)) => Ok(Some(s)),
            Some(other) => {
                Err(protocol_err(format!("field {key:?} must be a string, got {other:?}")))
            }
        }
    }

    fn required_string(&self, key: &str) -> Result<&str, FfsmError> {
        self.string(key)?.ok_or_else(|| protocol_err(format!("missing field {key:?}")))
    }

    fn number(&self, key: &str) -> Result<Option<f64>, FfsmError> {
        match self.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(JsonValue::Number(n)) => Ok(Some(*n)),
            Some(other) => {
                Err(protocol_err(format!("field {key:?} must be a number, got {other:?}")))
            }
        }
    }

    fn unsigned(&self, key: &str) -> Result<Option<u64>, FfsmError> {
        match self.number(key)? {
            None => Ok(None),
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Ok(Some(n as u64)),
            Some(n) => {
                Err(protocol_err(format!("field {key:?} must be a non-negative integer, got {n}")))
            }
        }
    }

    fn boolean(&self, key: &str) -> Result<Option<bool>, FfsmError> {
        match self.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(JsonValue::Bool(b)) => Ok(Some(*b)),
            Some(other) => {
                Err(protocol_err(format!("field {key:?} must be a boolean, got {other:?}")))
            }
        }
    }
}

/// Parse one request line into its [`Envelope`].
///
/// # Errors
///
/// [`FfsmError::Protocol`] for malformed JSON, an unknown `op` or a missing /
/// ill-typed field; [`FfsmError::UnknownMeasure`] for a bad `measure` name;
/// [`FfsmError::Graph`] when an `update` request's `.gu` payload does not parse.
pub fn parse_request(line: &str) -> Result<Envelope, FfsmError> {
    let fields = Fields { pairs: parse_object(line)? };
    let id = fields.unsigned("id")?;
    let op = fields.required_string("op")?;
    let request = match op {
        "mine" => {
            let graph = fields.required_string("graph")?.to_string();
            let tau = fields
                .number("tau")?
                .ok_or_else(|| protocol_err("mine requires a numeric \"tau\""))?;
            let measure = match fields.string("measure")? {
                Some(name) => name.parse::<MeasureKind>()?,
                None => MeasureKind::Mni,
            };
            let max_edges = fields.unsigned("max_edges")?.unwrap_or(3) as usize;
            let top_k = fields.unsigned("top_k")?.map(|k| k as usize);
            let deadline_ms = fields.unsigned("deadline_ms")?;
            let bounds = fields.boolean("bounds")?.unwrap_or(false);
            Request::Mine(MineParams { graph, tau, measure, max_edges, top_k, deadline_ms, bounds })
        }
        "update" => {
            let graph = fields.required_string("graph")?.to_string();
            let text = fields.required_string("updates")?;
            let batches = io::updates_from_string(text).map_err(FfsmError::Graph)?;
            if batches.is_empty() {
                return Err(protocol_err("update carries no updates"));
            }
            Request::Update { graph, batches }
        }
        "partition" => {
            let graph = fields.required_string("graph")?.to_string();
            let shards = fields
                .unsigned("shards")?
                .ok_or_else(|| protocol_err("partition requires a numeric \"shards\""))?
                as usize;
            let halo = fields.unsigned("halo")?.unwrap_or(3) as usize;
            let strategy = match fields.string("strategy")? {
                Some(name) => name.parse::<PartitionStrategy>()?,
                None => PartitionStrategy::VertexRange,
            };
            Request::Partition {
                graph,
                spec: PartitionSpec { num_shards: shards, halo_depth: halo, strategy },
            }
        }
        "list" => Request::List,
        "stat" => Request::Stat { graph: fields.string("graph")?.map(str::to_string) },
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(protocol_err(format!(
                "unknown op {other:?} (expected mine, update, partition, list, stat, metrics \
                 or shutdown)"
            )))
        }
    };
    Ok(Envelope { id, request })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_mine_request() {
        let env = parse_request(
            "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2.5, \"measure\": \"MIS\", \
             \"max_edges\": 4, \"deadline_ms\": 250, \"bounds\": true, \"id\": 9}",
        )
        .unwrap();
        assert_eq!(env.id, Some(9));
        let Request::Mine(p) = env.request else { panic!("expected mine") };
        assert_eq!(p.graph, "g");
        assert_eq!(p.tau, 2.5);
        assert_eq!(p.measure, MeasureKind::Mis);
        assert_eq!(p.max_edges, 4);
        assert_eq!(p.top_k, None);
        assert_eq!(p.deadline_ms, Some(250));
        assert!(p.bounds);
    }

    #[test]
    fn mine_defaults_match_the_cli() {
        let Request::Mine(p) =
            parse_request("{\"op\":\"mine\",\"graph\":\"g\",\"tau\":2}").unwrap().request
        else {
            panic!("expected mine")
        };
        assert_eq!(p.measure, MeasureKind::Mni);
        assert_eq!(p.max_edges, 3);
        assert_eq!(p.deadline_ms, None);
        assert!(!p.bounds);
    }

    #[test]
    fn update_parses_gu_batches() {
        let env = parse_request(
            "{\"op\": \"update\", \"graph\": \"g\", \"updates\": \"ae 0 1\\nt 1\\nre 2 3\"}",
        )
        .unwrap();
        let Request::Update { graph, batches } = env.request else { panic!("expected update") };
        assert_eq!(graph, "g");
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0], vec![GraphUpdate::AddEdge(0, 1)]);
        assert_eq!(batches[1], vec![GraphUpdate::RemoveEdge(2, 3)]);
    }

    #[test]
    fn partition_parses_spec_with_defaults() {
        let Request::Partition { graph, spec } =
            parse_request("{\"op\": \"partition\", \"graph\": \"g\", \"shards\": 4}")
                .unwrap()
                .request
        else {
            panic!("expected partition")
        };
        assert_eq!(graph, "g");
        assert_eq!(spec, PartitionSpec::vertex_range(4, 3));

        let Request::Partition { spec, .. } = parse_request(
            "{\"op\": \"partition\", \"graph\": \"g\", \"shards\": 2, \"halo\": 5, \
             \"strategy\": \"label-aware\"}",
        )
        .unwrap()
        .request
        else {
            panic!("expected partition")
        };
        assert_eq!(spec, PartitionSpec::label_aware(2, 5));

        // Missing shards is a protocol error; a bad strategy keeps its type.
        let err = parse_request("{\"op\": \"partition\", \"graph\": \"g\"}").unwrap_err();
        assert!(matches!(err, FfsmError::Protocol(_)));
        let err = parse_request(
            "{\"op\": \"partition\", \"graph\": \"g\", \"shards\": 2, \"strategy\": \"zzz\"}",
        )
        .unwrap_err();
        assert!(matches!(err, FfsmError::Partition(_)));
    }

    #[test]
    fn list_stat_shutdown_round_trip() {
        assert!(matches!(parse_request("{\"op\": \"list\"}").unwrap().request, Request::List));
        assert!(matches!(
            parse_request("{\"op\": \"stat\"}").unwrap().request,
            Request::Stat { graph: None }
        ));
        let Request::Stat { graph } =
            parse_request("{\"op\": \"stat\", \"graph\": \"g\"}").unwrap().request
        else {
            panic!("expected stat")
        };
        assert_eq!(graph.as_deref(), Some("g"));
        assert!(matches!(
            parse_request("{\"op\": \"metrics\", \"id\": 4}").unwrap().request,
            Request::Metrics
        ));
        assert!(matches!(
            parse_request("{\"op\": \"shutdown\", \"id\": 1}").unwrap().request,
            Request::Shutdown
        ));
    }

    #[test]
    fn malformed_requests_are_typed_protocol_errors() {
        for bad in [
            "",
            "not json",
            "{\"op\": \"mine\"}",                           // missing graph
            "{\"op\": \"mine\", \"graph\": \"g\"}",         // missing tau
            "{\"op\": \"mine\", \"graph\": 3, \"tau\": 1}", // ill-typed graph
            "{\"op\": \"nope\"}",                           // unknown op
            "{\"graph\": \"g\"}",                           // missing op
            "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 1} trailing",
            "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 1, \"top_k\": -2}",
            "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 1, \"bounds\": 1}", // ill-typed flag
            "{\"op\": [1]}",                                                   // nested value
            "{\"op\": \"update\", \"graph\": \"g\", \"updates\": \"\"}",       // empty batch
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(matches!(err, FfsmError::Protocol(_)), "{bad:?} -> {err:?}");
        }
        // Errors below the protocol layer keep their own types.
        let err =
            parse_request("{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 1, \"measure\": \"XX\"}")
                .unwrap_err();
        assert!(matches!(err, FfsmError::UnknownMeasure(_)));
        let err = parse_request("{\"op\": \"update\", \"graph\": \"g\", \"updates\": \"zz 1\"}")
            .unwrap_err();
        assert!(matches!(err, FfsmError::Graph(_)));
    }

    #[test]
    fn parser_handles_escapes_and_whitespace() {
        let pairs =
            parse_object("  { \"a\" : \"x\\ty\\u0041\" , \"b\" : true , \"c\" : null }  ").unwrap();
        assert_eq!(pairs[0].1, JsonValue::String("x\tyA".into()));
        assert_eq!(pairs[1].1, JsonValue::Bool(true));
        assert_eq!(pairs[2].1, JsonValue::Null);
        assert_eq!(parse_object("{}").unwrap(), vec![]);
    }
}
