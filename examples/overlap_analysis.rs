//! Compare the four overlap notions (simple, harmful, structural, edge) on the
//! paper's Figure 9/10 examples and on an overlap-heavy social-style graph, and show
//! how the choice changes MIS- and MCP-style supports (Section 4.5).
//!
//! Run with: `cargo run --release --example overlap_analysis`

use ffsm::core::{OccurrenceSet, OverlapAnalysis, OverlapKind};
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{figures, generators};
use ffsm::hypergraph::SearchBudget;

fn analyse(name: &str, graph: &ffsm::graph::LabeledGraph, pattern: &ffsm::graph::Pattern) {
    let occ = OccurrenceSet::enumerate(pattern, graph, IsoConfig::with_limit(2_000));
    if occ.num_occurrences() == 0 {
        println!("{name}: pattern does not occur\n");
        return;
    }
    let analysis = OverlapAnalysis::new(&occ);
    let census = analysis.overlap_census();
    let budget = SearchBudget::default();
    println!("workload: {name}");
    println!("  occurrences: {} ({} pairs)", census.num_occurrences, census.num_pairs());
    println!(
        "  overlapping pairs   simple {:>4}  harmful {:>4}  structural {:>4}  edge {:>4}",
        census.simple, census.harmful, census.structural, census.edge
    );
    println!(
        "  MIS under notion    simple {:>4}  harmful {:>4}  structural {:>4}  edge {:>4}",
        analysis.mis_under(OverlapKind::Simple, budget),
        analysis.mis_under(OverlapKind::Harmful, budget),
        analysis.mis_under(OverlapKind::Structural, budget),
        analysis.mis_under(OverlapKind::Edge, budget),
    );
    println!("  MCP under simple overlap: {}\n", analysis.mcp_under(OverlapKind::Simple, budget));
}

fn main() {
    // The paper's own examples: Figure 9 (structural without harmful) and Figure 10
    // (harmful without structural, plus a simple-only pair).
    for figure in [figures::figure9(), figures::figure10(), figures::figure2()] {
        analyse(figure.name, &figure.graph, &figure.pattern);
    }

    // An overlap-heavy synthetic social graph: triangle-rich, two labels.
    let graph = generators::power_law_cluster(150, 2, 0.7, 2, 99);
    if let Some((pattern, _)) = generators::sample_pattern(&graph, 2, 7) {
        analyse("power-law-cluster(150) with a sampled 2-edge pattern", &graph, &pattern);
    }

    println!("reading the numbers: harmful/structural/edge overlap are weaker notions than simple");
    println!("overlap, so they produce sparser overlap graphs and larger (less conservative) MIS");
    println!("values; MCP is always at least the simple-overlap MIS.");
}
